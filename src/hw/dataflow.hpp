#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/compression_stats.hpp"
#include "hw/config.hpp"
#include "hw/pipeline_sim.hpp"

namespace rpbcm::hw {

/// One convolution layer as presented to the timing model.
struct LayerWorkload {
  core::ConvShape shape;
  std::size_t block_size = 8;
  bool compressible = true;  // false: runs on the dense fallback datapath
  double alpha = 0.0;        // fraction of BCMs pruned (skip-index zeros)
};

/// Cycle accounting of one layer. The compute terms are the paper's three
/// computations C_fft / C_emac / C_ifft (Section IV-C); the transfer terms
/// are the three tile-by-tile off-chip streams they are double-buffered
/// against (real input / complex weight / real output).
struct CycleBreakdown {
  std::string name;  // layer name (empty for aggregated rows)
  std::uint64_t fft = 0;
  std::uint64_t emac = 0;
  std::uint64_t skip_check = 0;
  std::uint64_t ifft = 0;
  std::uint64_t input_read = 0;
  std::uint64_t weight_read = 0;
  std::uint64_t output_write = 0;
  std::uint64_t total = 0;  // with the configured dataflow's overlap

  /// Per-stream busy/stall accounting of the pipelined schedule. Only the
  /// fine-grained dataflow fills this (the other dataflows have no
  /// per-stream schedule to attribute).
  std::array<StreamStats, kPipelineStreams> streams{};

  std::uint64_t compute_total() const {
    return fft + emac + skip_check + ifft;
  }
  std::uint64_t transfer_total() const {
    return input_read + weight_read + output_write;
  }

  CycleBreakdown& operator+=(const CycleBreakdown& o);
};

/// Simulates one convolution layer tile-by-tile under the configured
/// dataflow. Tiles walk the output spatial grid; edge tiles are modeled
/// exactly (smaller pixel counts), not rounded up.
CycleBreakdown simulate_conv_layer(const LayerWorkload& wl,
                                   const HwConfig& cfg);

/// Simulates a fully connected layer (treated as a K=1 conv on a single
/// pixel, the standard mapping).
CycleBreakdown simulate_fc_layer(const core::LinearShape& fc,
                                 std::size_t block_size, bool compressible,
                                 double alpha, const HwConfig& cfg);

/// Whole-network simulation under an RP-BCM compression config. Layers
/// whose channels do not divide BS run on the dense fallback path. Returns
/// total cycles; optionally fills per-layer breakdowns.
std::uint64_t simulate_network_cycles(
    const core::NetworkShape& net, const core::BcmCompressionConfig& ccfg,
    const HwConfig& hcfg, std::vector<CycleBreakdown>* per_layer = nullptr);

}  // namespace rpbcm::hw

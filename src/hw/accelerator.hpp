#pragma once

#include <string>
#include <vector>

#include "hw/dataflow.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"

namespace rpbcm::hw {

/// End-to-end simulation result for one network on one configuration —
/// everything a Table III row needs.
struct AcceleratorReport {
  std::string network;
  std::vector<CycleBreakdown> layers;
  std::uint64_t total_cycles = 0;
  double latency_ms = 0.0;
  double fps = 0.0;
  ResourceReport resources;
  PowerReport power;

  /// Network-wide per-stream busy/stall cycles, summed over layers
  /// (fine-grained dataflow only; zero otherwise). Indexed by
  /// hw::PipelineStream; names in hw::kStreamNames.
  std::array<StreamStats, kPipelineStreams> stream_stats{};

  /// Fraction of total cycles the stream's engine was busy.
  double stream_occupancy(std::size_t stream) const {
    return total_cycles > 0
               ? static_cast<double>(stream_stats[stream].busy) /
                     static_cast<double>(total_cycles)
               : 0.0;
  }

  double fps_per_klut() const {
    return resources.kilo_luts > 0 ? fps / resources.kilo_luts : 0.0;
  }
  double fps_per_dsp() const {
    return resources.dsps > 0 ? fps / static_cast<double>(resources.dsps)
                              : 0.0;
  }
  double fps_per_watt() const {
    const double w = power.total_w();
    return w > 0 ? fps / w : 0.0;
  }
};

/// Simulates a full network (cycles, FPS, resources, power) on the
/// configured accelerator.
AcceleratorReport simulate_accelerator(const core::NetworkShape& net,
                                       const core::BcmCompressionConfig& ccfg,
                                       const HwConfig& hcfg);

}  // namespace rpbcm::hw

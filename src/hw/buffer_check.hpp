#pragma once

#include <vector>

#include "hw/dataflow.hpp"

namespace rpbcm::hw {

/// On-chip feasibility of one layer's tiling under a configuration.
/// Input and output tiles must fit their (single-copy) buffers — the
/// config's budgets are per copy, double buffering is accounted by the
/// resource model. Weights may either fit entirely (single-pass: loaded
/// once, reused across tiles, Fig. 8b) or be streamed in chunks through
/// the weight buffer (extra re-reads are already charged by the timing
/// model's per-tile weight stream).
struct TileFeasibility {
  double input_tile_kb = 0.0;
  double output_tile_kb = 0.0;
  double weight_total_kb = 0.0;
  bool input_fits = false;
  bool output_fits = false;
  bool weights_single_pass = false;

  bool feasible() const { return input_fits && output_fits; }
};

/// Checks one layer.
TileFeasibility check_tiles(const LayerWorkload& wl, const HwConfig& cfg);

/// Largest square output tile (in pixels per side) whose input and output
/// footprints both fit the configured buffers; 0 if even a 1x1 tile does
/// not fit.
std::size_t max_feasible_tile(const LayerWorkload& wl, const HwConfig& cfg);

/// Network-level summary: every layer's feasibility in order.
std::vector<TileFeasibility> check_network_tiles(
    const core::NetworkShape& net, const core::BcmCompressionConfig& ccfg,
    const HwConfig& cfg);

}  // namespace rpbcm::hw

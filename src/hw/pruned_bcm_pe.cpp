#include "hw/pruned_bcm_pe.hpp"

#include "hw/emac_pe.hpp"

namespace rpbcm::hw {

PeBankCycles pe_bank_cycles(const PeBankWork& work, const HwConfig& cfg) {
  RPBCM_CHECK(work.live_blocks <= work.total_blocks);
  PeBankCycles c;
  const std::uint64_t groups =
      (work.tile_pixels + cfg.parallelism - 1) / cfg.parallelism;
  const std::uint64_t per_block =
      groups * EmacPe::cycles_per_block(work.block_size);
  if (cfg.skip_scheme) {
    c.skip_check = static_cast<std::uint64_t>(work.total_blocks) *
                   cfg.skip_check_cycles;
    c.emac = static_cast<std::uint64_t>(work.live_blocks) * per_block;
  } else {
    c.skip_check = 0;
    c.emac = static_cast<std::uint64_t>(work.total_blocks) * per_block;
  }
  return c;
}

}  // namespace rpbcm::hw

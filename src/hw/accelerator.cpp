#include "hw/accelerator.hpp"

namespace rpbcm::hw {

AcceleratorReport simulate_accelerator(const core::NetworkShape& net,
                                       const core::BcmCompressionConfig& ccfg,
                                       const HwConfig& hcfg) {
  AcceleratorReport r;
  r.network = net.name;
  r.total_cycles = simulate_network_cycles(net, ccfg, hcfg, &r.layers);
  for (const CycleBreakdown& l : r.layers)
    for (std::size_t s = 0; s < kPipelineStreams; ++s)
      r.stream_stats[s] += l.streams[s];
  const double hz = hcfg.frequency_mhz * 1e6;
  r.latency_ms = static_cast<double>(r.total_cycles) / hz * 1e3;
  r.fps = hz / static_cast<double>(r.total_cycles);
  r.resources = estimate_resources(hcfg);
  r.power = estimate_power(r.resources, hcfg);
  return r;
}

}  // namespace rpbcm::hw

#pragma once

#include <cstddef>
#include <cstdint>

#include "base/check.hpp"

namespace rpbcm::hw {

/// Capacities of the target FPGA. Defaults are the Xilinx XC7Z020 on the
/// PYNQ-Z2 board the paper targets: 53.2k LUTs, 220 DSP48E1 slices, 140
/// BRAM36 blocks (140 x 36 Kb = 630 KB).
struct FpgaResources {
  double kilo_luts = 53.2;
  std::size_t dsps = 220;
  double bram36 = 140.0;  // 36 Kb blocks
};

/// Which dataflow the timing model applies (Section IV-C / ablations).
enum class DataflowKind {
  /// Proposed: C_fft, C_emac, C_ifft each have their own double buffering
  /// against their own off-chip stream (real input / complex weight / real
  /// output), and the three computations pipeline against each other.
  kFineGrained,
  /// REQ-YOLO-style: FFT–eMAC–IFFT treated as one computational delay,
  /// double-buffered against the combined off-chip traffic.
  kMonolithic,
  /// No double buffering at all: transfers and compute fully serialize.
  kSerial,
};

/// Accelerator configuration (Fig. 6 architecture).
struct HwConfig {
  double frequency_mhz = 100.0;  // Table III clock
  std::size_t block_size = 8;    // BS

  /// p — eMAC PEs per Pruned-BCM PE bank; they share one weight spectrum
  /// and process p different partial inputs in parallel (Fig. 7).
  std::size_t parallelism = 16;

  /// FFT PEs; the IFFT reuses the same modules with conjugate inputs and a
  /// shift-based 1/BS divider (Section IV-B).
  std::size_t fft_units = 4;

  /// Cycles a PE-bank controller spends checking one skip-index bit.
  std::size_t skip_check_cycles = 1;

  /// Whether the skip scheme is instantiated (proposed PE) or not
  /// (conventional PE baseline of Fig. 10 / Table II).
  bool skip_scheme = true;

  DataflowKind dataflow = DataflowKind::kFineGrained;

  /// Output-tile spatial dimensions for the tile-by-tile processing.
  std::size_t tile_h = 14;
  std::size_t tile_w = 14;

  /// Channel tiling (the Tn/Tm of Ma et al. [15]): at most this many input
  /// (resp. output) channels are resident on chip at once. Layers wider
  /// than tile_out_channels process output-channel groups sequentially and
  /// re-read (and re-FFT) the input tile once per group — the timing model
  /// charges that traffic.
  std::size_t tile_in_channels = 128;
  std::size_t tile_out_channels = 128;

  /// Shrink the spatial tile per layer until its input/output footprints
  /// fit the buffers (stride-2 layers have larger input halos). Mirrors
  /// the per-layer tile selection of real tile-based accelerators.
  bool auto_tile = true;

  /// Effective DRAM bandwidth (PYNQ-Z2 DDR3 through one HP AXI port) and
  /// per-burst latency.
  double dram_gbps = 1.25;
  std::size_t dram_burst_latency = 80;  // cycles

  /// Datapath width: 16-bit fixed point (Q7.8) throughout.
  std::size_t data_bits = 16;

  /// On-chip buffer budgets in KB (each stream is double-buffered, so the
  /// BRAM model charges twice these). Sized for the Table III design point.
  double input_buffer_kb = 90.0;
  double weight_buffer_kb = 78.0;
  double output_buffer_kb = 82.5;

  /// MACs/cycle available to non-compressible (dense) layers, which run on
  /// the same multiplier pool in direct-convolution mode.
  std::size_t dense_macs_per_cycle = 64;

  FpgaResources board;

  double bytes_per_cycle() const {
    return dram_gbps * 1e9 / (frequency_mhz * 1e6);
  }

  void validate() const {
    RPBCM_CHECK(frequency_mhz > 0 && parallelism > 0 && fft_units > 0);
    RPBCM_CHECK(tile_h > 0 && tile_w > 0 && dram_gbps > 0);
    RPBCM_CHECK(block_size >= 2);
  }
};

}  // namespace rpbcm::hw

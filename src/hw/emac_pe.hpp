#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/fixed_point.hpp"

namespace rpbcm::hw {

using numeric::CFix16;

/// Element-MAC processing element (Fig. 7): complex multiply-accumulate on
/// the conjugate-symmetric half spectrum. A BS-size block costs only
/// BS/2+1 MAC operations because the FFT of real data is conjugate
/// symmetric [6]; the mirrored bins are reconstructed for free at the IFFT
/// input.
class EmacPe {
 public:
  /// acc[k] += w[k] * x[k] over the half spectrum (k = 0 .. BS/2).
  static void emac_half(std::span<const CFix16> w_half,
                        std::span<const CFix16> x_half,
                        std::span<CFix16> acc_half);

  /// Expands a half spectrum back to the full BS bins by conjugate
  /// symmetry — the wiring between the eMAC accumulators and the IFFT.
  static std::vector<CFix16> expand_half(std::span<const CFix16> half,
                                         std::size_t bs);

  /// Extracts the non-redundant half (BS/2+1 bins) of a full spectrum.
  static std::vector<CFix16> take_half(std::span<const CFix16> full);

  /// One complex MAC per cycle: a surviving block costs BS/2+1 cycles per
  /// partial input.
  static std::uint64_t cycles_per_block(std::size_t bs) { return bs / 2 + 1; }
};

}  // namespace rpbcm::hw

#include "hw/resource_model.hpp"

#include <cmath>

#include "numeric/fft.hpp"

namespace rpbcm::hw {

double bram36_for_kb(double kb) {
  // One BRAM36 block = 36 Kbit = 4.5 KB; allocation is half-block granular
  // (BRAM18 primitives).
  return std::ceil(kb / 4.5 * 2.0) / 2.0;
}

ResourceReport estimate_resources(const HwConfig& cfg,
                                  const ResourceCosts& costs) {
  cfg.validate();
  ResourceReport r;
  const auto stages = static_cast<double>(numeric::log2_exact(cfg.block_size));

  // DSPs: eMAC bank + FFT bank + base.
  r.dsps = costs.base_dsp + cfg.parallelism * costs.emac_dsp +
           cfg.fft_units * static_cast<std::size_t>(stages) *
               costs.fft_stage_dsp;

  // LUTs.
  r.kilo_luts = costs.base_kluts +
                static_cast<double>(cfg.parallelism) * costs.emac_kluts +
                static_cast<double>(cfg.fft_units) * stages *
                    costs.fft_stage_kluts;
  if (cfg.skip_scheme) {
    r.kilo_luts += costs.skip_kluts;
    r.dsps += costs.skip_dsp;
  }

  // BRAM: double-buffered input/weight/output streams, the small BS-size
  // ping-pong buffers of the FFT/IFFT stages, the twiddle ROM, and (with
  // the skip scheme) the skip-index buffer.
  double kb = 2.0 * (cfg.input_buffer_kb + cfg.weight_buffer_kb +
                     cfg.output_buffer_kb);
  const double bs_buf_kb =
      2.0 * static_cast<double>(cfg.fft_units) *
      static_cast<double>(cfg.block_size) *
      static_cast<double>(cfg.data_bits) / 8.0 / 1024.0 * 2.0;  // re+im
  const double rom_kb = static_cast<double>(cfg.block_size / 2) *
                        static_cast<double>(cfg.data_bits) * 2.0 / 8.0 /
                        1024.0;
  kb += bs_buf_kb + rom_kb;
  if (cfg.skip_scheme) kb += costs.skip_index_kb;
  r.bram36 = bram36_for_kb(kb);
  return r;
}

}  // namespace rpbcm::hw

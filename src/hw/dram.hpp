#pragma once

#include <cstdint>

#include "hw/config.hpp"

namespace rpbcm::hw {

/// Latency/bandwidth model of the off-chip DRAM channel. Transfers are
/// burst-granular: each request pays the burst latency once, then streams
/// at the configured bandwidth.
class DramModel {
 public:
  explicit DramModel(const HwConfig& cfg)
      : bytes_per_cycle_(cfg.bytes_per_cycle()),
        burst_latency_(cfg.dram_burst_latency) {}

  /// Cycles to move `bytes` in `bursts` burst requests.
  std::uint64_t transfer_cycles(std::uint64_t bytes,
                                std::uint64_t bursts = 1) const {
    if (bytes == 0) return 0;
    if (bursts == 0) bursts = 1;
    const auto stream = static_cast<std::uint64_t>(
        static_cast<double>(bytes) / bytes_per_cycle_ + 0.999999);
    return burst_latency_ * bursts + stream;
  }

  double bytes_per_cycle() const { return bytes_per_cycle_; }

 private:
  double bytes_per_cycle_;
  std::uint64_t burst_latency_;
};

}  // namespace rpbcm::hw

#include "hw/pipeline_sim.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/parallel.hpp"
#include "obs/macros.hpp"

namespace rpbcm::hw {

std::uint64_t simulate_tile_pipeline(const std::vector<TileStreamCosts>& tiles,
                                     PipelineTrace* trace) {
  if (trace) *trace = PipelineTrace{};
  if (tiles.empty()) return 0;
  const std::size_t n = tiles.size();
  RPBCM_OBS_TIMED_SCOPE("hw", "tile_pipeline",
                        "rpbcm.hw.pipeline.sim_seconds");
  RPBCM_OBS_COUNT("rpbcm.hw.pipeline.tiles", n);
  // finish[s][i]: completion cycle of stream s on tile i.
  std::array<std::vector<std::uint64_t>, kPipelineStreams> finish;
  for (auto& f : finish) f.assign(n, 0);

  auto cost = [&](std::size_t s, std::size_t i) -> std::uint64_t {
    const TileStreamCosts& t = tiles[i];
    switch (s) {
      case kStreamInputRead:
        return t.input_read;
      case kStreamFft:
        return t.fft;
      case kStreamWeightRead:
        return t.weight_read;
      case kStreamEmac:
        return t.emac;
      case kStreamIfft:
        return t.ifft;
      case kStreamOutputWrite:
        return t.output_write;
      default:
        RPBCM_CHECK(false);
        return 0;
    }
  };

  // Producers of each stream (data dependencies within a tile).
  static constexpr std::array<std::array<int, 2>, kPipelineStreams> producers =
      {{
          {{-1, -1}},                         // input read: none
          {{kStreamInputRead, -1}},           // fft consumes the input tile
          {{-1, -1}},                         // weight read: none
          {{kStreamFft, kStreamWeightRead}},  // emac: spectra + weights
          {{kStreamEmac, -1}},                // ifft: accumulated spectra
          {{kStreamIfft, -1}},                // output write drains outputs
      }};
  // Consumer of each stream (whose double buffer must free up).
  static constexpr std::array<int, kPipelineStreams> consumer = {
      kStreamFft, kStreamEmac, kStreamEmac, kStreamIfft, kStreamOutputWrite,
      -1};

  // Events are written by index so the trace order matches the serial
  // s-ascending sweep regardless of the thread count.
  if (trace) trace->events.resize(n * kPipelineStreams);

  // Same-tile dependency levels: the reads have no same-tile producers,
  // then fft, emac, ifft, and the output write each consume earlier levels
  // only. Streams within a level touch disjoint finish rows, stats slots,
  // and event indices, so they may run in parallel; all the arithmetic is
  // integral, hence exact at any thread count.
  static constexpr std::array<std::array<int, 2>, 5> levels = {{
      {{kStreamInputRead, kStreamWeightRead}},
      {{kStreamFft, -1}},
      {{kStreamEmac, -1}},
      {{kStreamIfft, -1}},
      {{kStreamOutputWrite, -1}},
  }};

  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& level : levels) {
      const std::size_t width = level[1] >= 0 ? 2 : 1;
      base::parallel_for(0, width, 1, [&](std::size_t l0, std::size_t l1) {
        for (std::size_t li = l0; li < l1; ++li) {
          const auto s = static_cast<std::size_t>(level[li]);
          const std::uint64_t engine_free = i > 0 ? finish[s][i - 1] : 0;
          std::uint64_t data_ready = 0;
          for (int p : producers[s])
            if (p >= 0)
              data_ready = std::max(data_ready,
                                    finish[static_cast<std::size_t>(p)][i]);
          // Ping-pong buffer: the consumer must have drained tile i-2
          // before this stream may overwrite that buffer with tile i.
          std::uint64_t buffer_free = 0;
          if (consumer[s] >= 0 && i >= 2)
            buffer_free = finish[static_cast<std::size_t>(consumer[s])][i - 2];

          const std::uint64_t start =
              std::max({engine_free, data_ready, buffer_free});
          finish[s][i] = start + cost(s, i);

          if (trace) {
            // Idle attribution: from engine_free the engine first waits for
            // its producer's data, then (if still blocked) for the consumer
            // to release the ping-pong buffer. Overlapping waits are
            // charged to the data dependency first.
            const std::uint64_t idle = start - engine_free;
            const std::uint64_t wait_data = std::min(
                idle,
                data_ready > engine_free ? data_ready - engine_free : 0);
            const std::uint64_t wait_buffer = idle - wait_data;
            TileStreamEvent ev;
            ev.stream = static_cast<std::uint32_t>(s);
            ev.tile = static_cast<std::uint32_t>(i);
            ev.start = start;
            ev.finish = finish[s][i];
            ev.stall_data = wait_data;
            ev.stall_buffer = wait_buffer;
            trace->events[i * kPipelineStreams + s] = ev;
            StreamStats& st = trace->streams[s];
            st.busy += cost(s, i);
            st.stall_data += wait_data;
            st.stall_buffer += wait_buffer;
          }
        }
      });
    }
  }
  const std::uint64_t total = finish[kStreamOutputWrite][n - 1];
  if (trace) trace->total_cycles = total;
  return total;
}

}  // namespace rpbcm::hw

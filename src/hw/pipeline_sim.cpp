#include "hw/pipeline_sim.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace rpbcm::hw {

namespace {

// Stream indices: topological order of the pipeline.
enum Stream : std::size_t {
  kInRd = 0,
  kFft = 1,
  kWRd = 2,
  kEmac = 3,
  kIfft = 4,
  kOutWr = 5,
  kStreams = 6,
};

}  // namespace

std::uint64_t simulate_tile_pipeline(
    const std::vector<TileStreamCosts>& tiles) {
  if (tiles.empty()) return 0;
  const std::size_t n = tiles.size();
  // finish[s][i]: completion cycle of stream s on tile i.
  std::array<std::vector<std::uint64_t>, kStreams> finish;
  for (auto& f : finish) f.assign(n, 0);

  auto cost = [&](std::size_t s, std::size_t i) -> std::uint64_t {
    const TileStreamCosts& t = tiles[i];
    switch (s) {
      case kInRd:
        return t.input_read;
      case kFft:
        return t.fft;
      case kWRd:
        return t.weight_read;
      case kEmac:
        return t.emac;
      case kIfft:
        return t.ifft;
      case kOutWr:
        return t.output_write;
      default:
        RPBCM_CHECK(false);
        return 0;
    }
  };

  // Producers of each stream (data dependencies within a tile).
  static constexpr std::array<std::array<int, 2>, kStreams> producers = {{
      {{-1, -1}},        // input read: none
      {{kInRd, -1}},     // fft consumes the input tile
      {{-1, -1}},        // weight read: none
      {{kFft, kWRd}},    // emac consumes spectra + weights
      {{kEmac, -1}},     // ifft consumes accumulated spectra
      {{kIfft, -1}},     // output write drains the real outputs
  }};
  // Consumer of each stream (whose double buffer must free up).
  static constexpr std::array<int, kStreams> consumer = {
      kFft, kEmac, kEmac, kIfft, kOutWr, -1};

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      std::uint64_t start = 0;
      if (i > 0) start = std::max(start, finish[s][i - 1]);  // engine busy
      for (int p : producers[s])
        if (p >= 0)
          start = std::max(start, finish[static_cast<std::size_t>(p)][i]);
      // Ping-pong buffer: the consumer must have drained tile i-2 before
      // this stream may overwrite that buffer with tile i.
      if (consumer[s] >= 0 && i >= 2)
        start = std::max(
            start, finish[static_cast<std::size_t>(consumer[s])][i - 2]);
      finish[s][i] = start + cost(s, i);
    }
  }
  return finish[kOutWr][n - 1];
}

}  // namespace rpbcm::hw

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/fixed_point.hpp"

namespace rpbcm::hw {

using numeric::CFix16;
using numeric::Fix16;

/// FFT processing element: radix-2 Cooley-Tukey datapath in 16-bit fixed
/// point with an on-chip quantized twiddle ROM (Section IV-A/B). The same
/// module computes the IFFT by conjugating and applying the shift-based
/// 1/BS divider, exactly as the paper's design reuses the FFT module.
class FftPe {
 public:
  explicit FftPe(std::size_t bs);

  std::size_t size() const { return bs_; }

  /// Forward FFT of a real fixed-point block.
  std::vector<CFix16> forward_real(std::span<const Fix16> x) const;

  /// Forward FFT of a complex fixed-point block (in place semantics).
  std::vector<CFix16> forward(std::vector<CFix16> data) const;

  /// Inverse FFT via the conjugate trick + log2(BS)-shift divider:
  /// IFFT(X) = conj(FFT(conj(X))) >> log2(BS).
  std::vector<CFix16> inverse(std::span<const CFix16> spec) const;

  /// Real part of the inverse FFT (the recovered output activations).
  std::vector<Fix16> inverse_real(std::span<const CFix16> spec) const;

  /// Pipelined timing: butterflies execute one per cycle per PE; a size-n
  /// transform occupies (n/2) * log2(n) cycles.
  static std::uint64_t cycles_per_transform(std::size_t n);

  /// Twiddle ROM footprint in complex words (for the BRAM model).
  std::size_t rom_words() const { return twiddle_.size(); }

 private:
  std::size_t bs_;
  std::size_t log2_bs_;
  std::vector<CFix16> twiddle_;  // quantized forward twiddles, n/2 words
};

}  // namespace rpbcm::hw

#pragma once

#include "hw/resource_model.hpp"

namespace rpbcm::hw {

/// Board-level power estimate in watts. Matches what Table III reports:
/// whole-board power of the PYNQ-Z2 (Zynq PS + PL) while inferencing.
struct PowerReport {
  double static_w = 0.0;   // PS subsystem + PL leakage
  double dynamic_w = 0.0;  // toggling logic, DSPs, BRAM, I/O
  double total_w() const { return static_w + dynamic_w; }
};

/// Activity-proportional power model: dynamic power scales with clock
/// frequency and with the instantiated resources. Constants are calibrated
/// to the Table III design point (1.83 W total at 100 MHz).
struct PowerCosts {
  double ps_static_w = 1.25;       // ARM subsystem + DDR PHY
  double pl_leakage_w = 0.10;
  double w_per_klut_100mhz = 0.012;
  double w_per_dsp_100mhz = 0.0010;
  double w_per_bram36_100mhz = 0.0011;
  double io_w = 0.035;             // AXI/DDR interface toggling
};

PowerReport estimate_power(const ResourceReport& res, const HwConfig& cfg,
                           const PowerCosts& costs = {});

}  // namespace rpbcm::hw

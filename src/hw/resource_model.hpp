#pragma once

#include "hw/config.hpp"

namespace rpbcm::hw {

/// Post-synthesis-style resource estimate, in the units Table III uses:
/// kLUT, DSP48 slices and BRAM36 blocks.
struct ResourceReport {
  double kilo_luts = 0.0;
  std::size_t dsps = 0;
  double bram36 = 0.0;

  double lut_util(const FpgaResources& b) const {
    return kilo_luts / b.kilo_luts;
  }
  double dsp_util(const FpgaResources& b) const {
    return static_cast<double>(dsps) / static_cast<double>(b.dsps);
  }
  double bram_util(const FpgaResources& b) const { return bram36 / b.bram36; }
};

/// Per-module cost constants, calibrated so the default HwConfig lands on
/// the paper's Table III utilization for the same design point (18.2 kLUT,
/// 117 DSP, 112.5 BRAM36 on the XC7Z020). The structure — what scales with
/// p, with the FFT bank, with the skip scheme — is the modeled quantity;
/// the absolute constants are fitted.
struct ResourceCosts {
  // One complex MAC datapath (4 multipliers folded onto DSP48s + align/acc).
  std::size_t emac_dsp = 4;
  double emac_kluts = 0.35;
  // One FFT PE: log2(BS) pipelined butterfly stages, one complex mul each.
  std::size_t fft_stage_dsp = 4;
  double fft_stage_kluts = 0.5;
  // Shared control, AXI DMA engines, and the non-linear modules
  // (BN/ReLU/pool) of Fig. 6.
  double base_kluts = 6.0;
  std::size_t base_dsp = 5;
  // Skip-scheme additions: PE-bank controller + index fetch logic.
  double skip_kluts = 0.6;
  std::size_t skip_dsp = 0;
  double skip_index_kb = 4.0;  // skip-index buffer budget
};

/// Estimates the accelerator's resource usage for a configuration.
ResourceReport estimate_resources(const HwConfig& cfg,
                                  const ResourceCosts& costs = {});

/// BRAM36 blocks needed for `kb` kilobytes (a BRAM36 holds 4.5 KB).
double bram36_for_kb(double kb);

}  // namespace rpbcm::hw

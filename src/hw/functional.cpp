#include "hw/functional.hpp"

#include "base/parallel.hpp"
#include "hw/emac_pe.hpp"
#include "hw/fft_pe.hpp"
#include "obs/macros.hpp"

namespace rpbcm::hw {
namespace {

// Upsets the quantized weight buffer in place. Each stored Q7.8 word —
// only surviving blocks are ever stored — draws once from a SplitMix64
// stream keyed on (seed, word index) and on a hit flips the bit selected
// by the same draw. Deterministic across runs and block orderings.
std::uint64_t apply_seu(std::vector<std::vector<CFix16>>& wq,
                        std::size_t half, const SeuOptions& seu) {
  std::uint64_t flips = 0;
  for (std::size_t b = 0; b < wq.size(); ++b) {
    if (wq[b].empty()) continue;  // pruned: no BRAM words to upset
    for (std::size_t k = 0; k < half; ++k) {
      for (std::size_t comp = 0; comp < 2; ++comp) {
        const std::uint64_t word_index =
            (static_cast<std::uint64_t>(b) * half + k) * 2 + comp;
        const std::uint64_t h = base::mix_seed(seu.seed, word_index);
        const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;
        if (draw >= seu.word_flip_prob) continue;
        const auto bit = static_cast<unsigned>(h % 16);
        Fix16& word = comp == 0 ? wq[b][k].re : wq[b][k].im;
        word = Fix16::from_raw(static_cast<Fix16::storage_t>(
            static_cast<std::uint16_t>(word.raw()) ^ (1u << bit)));
        ++flips;
      }
    }
  }
  return flips;
}

}  // namespace

tensor::Tensor bcm_conv_fixed_point(const tensor::Tensor& x,
                                    const core::FrequencyLayerWeights& fw,
                                    const nn::ConvSpec& spec) {
  return bcm_conv_fixed_point(x, fw, spec, SeuOptions{});
}

tensor::Tensor bcm_conv_fixed_point(const tensor::Tensor& x,
                                    const core::FrequencyLayerWeights& fw,
                                    const nn::ConvSpec& spec,
                                    const SeuOptions& seu) {
  const auto& lay = fw.layout;
  RPBCM_CHECK(x.rank() == 4 && x.dim(1) == spec.in_channels);
  RPBCM_CHECK(lay.in_channels == spec.in_channels &&
              lay.out_channels == spec.out_channels &&
              lay.kernel == spec.kernel);
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t ho = spec.out_dim(h), wo = spec.out_dim(w);
  const std::size_t bs = lay.block_size;
  const std::size_t nbi = lay.in_blocks(), nbo = lay.out_blocks();
  const std::size_t half = bs / 2 + 1;

  const FftPe fft(bs);

  // Quantize the deployed half-spectrum weights once (they live in the
  // weight buffer in Q7.8).
  std::vector<std::vector<CFix16>> wq(lay.total_blocks());
  RPBCM_CHECK(fw.spec_re.size() == lay.total_blocks() * half &&
              fw.spec_im.size() == lay.total_blocks() * half);
  for (std::size_t b = 0; b < wq.size(); ++b) {
    if (!fw.skip_index[b]) continue;
    const float* wre = fw.block_re(b);
    const float* wim = fw.block_im(b);
    wq[b].resize(half);
    for (std::size_t k = 0; k < half; ++k)
      wq[b][k] = CFix16::from_floats(wre[k], wim[k]);
  }
  if (seu.word_flip_prob > 0.0) {
    RPBCM_CHECK_MSG(seu.word_flip_prob <= 1.0,
                    "SEU word_flip_prob must be in [0, 1]");
    const std::uint64_t flips = apply_seu(wq, half, seu);
    if (flips > 0) RPBCM_OBS_COUNT("rpbcm.hw.seu.flips", flips);
    if (seu.flips != nullptr) *seu.flips = flips;
  } else if (seu.flips != nullptr) {
    *seu.flips = 0;
  }

  // FFT stage: spectra of every input pixel / channel block (half packing).
  std::vector<std::vector<CFix16>> xs(n * h * w * nbi);
  const float* xd = x.data();
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ih = 0; ih < h; ++ih)
      for (std::size_t iw = 0; iw < w; ++iw)
        for (std::size_t bi = 0; bi < nbi; ++bi) {
          std::vector<Fix16> block(bs);
          for (std::size_t c = 0; c < bs; ++c)
            block[c] = Fix16::from_float(
                xd[((ni * spec.in_channels + bi * bs + c) * h + ih) * w + iw]);
          const auto full = fft.forward_real(block);
          xs[((ni * h + ih) * w + iw) * nbi + bi] = EmacPe::take_half(full);
        }

  tensor::Tensor y({n, spec.out_channels, ho, wo});
  float* yd = y.data();
  std::vector<std::vector<CFix16>> acc(nbo);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t oh = 0; oh < ho; ++oh) {
      for (std::size_t ow = 0; ow < wo; ++ow) {
        for (auto& a : acc) a.assign(half, CFix16{});
        for (std::size_t kh = 0; kh < spec.kernel; ++kh) {
          const long ih = static_cast<long>(oh * spec.stride + kh) -
                          static_cast<long>(spec.pad);
          if (ih < 0 || ih >= static_cast<long>(h)) continue;
          for (std::size_t kw = 0; kw < spec.kernel; ++kw) {
            const long iw = static_cast<long>(ow * spec.stride + kw) -
                            static_cast<long>(spec.pad);
            if (iw < 0 || iw >= static_cast<long>(w)) continue;
            for (std::size_t bi = 0; bi < nbi; ++bi) {
              const auto& xh =
                  xs[((ni * h + static_cast<std::size_t>(ih)) * w +
                      static_cast<std::size_t>(iw)) *
                         nbi +
                     bi];
              for (std::size_t bo = 0; bo < nbo; ++bo) {
                const std::size_t blk = lay.block_id(kh, kw, bi, bo);
                if (!fw.skip_index[blk]) continue;  // skip-index check
                EmacPe::emac_half(wq[blk], xh, acc[bo]);
              }
            }
          }
        }
        // IFFT stage: expand conjugate-symmetric accumulators, transform,
        // write back the real output channels.
        for (std::size_t bo = 0; bo < nbo; ++bo) {
          const auto full = EmacPe::expand_half(acc[bo], bs);
          const auto out = fft.inverse_real(full);
          for (std::size_t c = 0; c < bs; ++c)
            yd[((ni * spec.out_channels + bo * bs + c) * ho + oh) * wo + ow] =
                out[c].to_float();
        }
      }
    }
  }
  return y;
}

}  // namespace rpbcm::hw

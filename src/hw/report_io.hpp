#pragma once

#include <iosfwd>
#include <string>

#include "hw/accelerator.hpp"
#include "obs/registry.hpp"

namespace rpbcm::hw {

/// Writes the per-layer cycle breakdown of a simulation as CSV:
///   layer,fft,emac,skip_check,ifft,input_read,weight_read,output_write,total
/// One row per layer (named; RFC-4180-quoted if the name contains commas,
/// quotes or newlines) plus a trailing "total" row.
void write_layer_csv(const AcceleratorReport& report, std::ostream& os);

/// Writes the headline metrics (cycles, FPS, resources, power,
/// efficiency) as a GitHub-flavored markdown table — the format used by
/// EXPERIMENTS.md.
void write_summary_markdown(const AcceleratorReport& report,
                            std::ostream& os);

/// Records the report's headline numbers and per-stream busy/stall
/// breakdown into `registry` under `rpbcm.hw.report.*`, so accelerator
/// results flow through the same metrics pipeline as trainer / pruning
/// instrumentation.
void export_report_metrics(const AcceleratorReport& report,
                           obs::Registry& registry);

/// Writes a registry snapshot as JSON — the single code path every
/// `--metrics-out=` exporter funnels through.
void write_metrics_json(const obs::RegistrySnapshot& snapshot,
                        std::ostream& os);

/// Convenience file-path overloads.
void write_layer_csv(const AcceleratorReport& report,
                     const std::string& path);
void write_summary_markdown(const AcceleratorReport& report,
                            const std::string& path);
void write_metrics_json(const obs::RegistrySnapshot& snapshot,
                        const std::string& path);

}  // namespace rpbcm::hw

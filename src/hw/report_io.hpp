#pragma once

#include <iosfwd>
#include <string>

#include "hw/accelerator.hpp"

namespace rpbcm::hw {

/// Writes the per-layer cycle breakdown of a simulation as CSV:
///   layer,fft,emac,skip_check,ifft,input_read,weight_read,output_write,total
/// One row per layer plus a trailing "total" row.
void write_layer_csv(const AcceleratorReport& report, std::ostream& os);

/// Writes the headline metrics (cycles, FPS, resources, power,
/// efficiency) as a GitHub-flavored markdown table — the format used by
/// EXPERIMENTS.md.
void write_summary_markdown(const AcceleratorReport& report,
                            std::ostream& os);

/// Convenience file-path overloads.
void write_layer_csv(const AcceleratorReport& report,
                     const std::string& path);
void write_summary_markdown(const AcceleratorReport& report,
                            const std::string& path);

}  // namespace rpbcm::hw

#include "hw/power_model.hpp"

namespace rpbcm::hw {

PowerReport estimate_power(const ResourceReport& res, const HwConfig& cfg,
                           const PowerCosts& costs) {
  PowerReport p;
  p.static_w = costs.ps_static_w + costs.pl_leakage_w;
  const double f = cfg.frequency_mhz / 100.0;
  p.dynamic_w = f * (costs.w_per_klut_100mhz * res.kilo_luts +
                     costs.w_per_dsp_100mhz * static_cast<double>(res.dsps) +
                     costs.w_per_bram36_100mhz * res.bram36) +
                costs.io_w;
  return p;
}

}  // namespace rpbcm::hw

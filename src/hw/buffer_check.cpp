#include "hw/buffer_check.hpp"

#include <algorithm>

namespace rpbcm::hw {

namespace {

TileFeasibility check_with_tile(const LayerWorkload& wl, const HwConfig& cfg,
                                std::size_t tile_h, std::size_t tile_w) {
  const auto& s = wl.shape;
  TileFeasibility f;
  const double bytes = static_cast<double>(cfg.data_bits) / 8.0;

  const std::size_t eff_h = std::min(tile_h, s.out_h());
  const std::size_t eff_w = std::min(tile_w, s.out_w());
  const std::size_t in_h = (eff_h - 1) * s.stride + s.kernel;
  const std::size_t in_w = (eff_w - 1) * s.stride + s.kernel;

  // Channel tiling bounds the resident footprint (Tn/Tm of Ma et al.).
  const std::size_t res_in = std::min(s.in_channels, cfg.tile_in_channels);
  const std::size_t res_out = std::min(s.out_channels, cfg.tile_out_channels);
  f.input_tile_kb =
      static_cast<double>(in_h * in_w * res_in) * bytes / 1024.0;
  f.output_tile_kb =
      static_cast<double>(eff_h * eff_w * res_out) * bytes / 1024.0;

  if (wl.compressible) {
    const std::size_t bs = wl.block_size;
    const std::size_t blocks =
        s.kernel * s.kernel * (s.in_channels / bs) * (s.out_channels / bs);
    const auto pruned = static_cast<std::size_t>(
        static_cast<double>(blocks) * std::clamp(wl.alpha, 0.0, 1.0));
    // Complex half-spectrum words (re+im) plus the skip index.
    f.weight_total_kb =
        (static_cast<double>((blocks - pruned) * (bs / 2 + 1)) * 2.0 * bytes +
         static_cast<double>(blocks) / 8.0) /
        1024.0;
  } else {
    f.weight_total_kb =
        static_cast<double>(s.dense_params()) * bytes / 1024.0;
  }

  f.input_fits = f.input_tile_kb <= cfg.input_buffer_kb;
  f.output_fits = f.output_tile_kb <= cfg.output_buffer_kb;
  f.weights_single_pass = f.weight_total_kb <= cfg.weight_buffer_kb;
  return f;
}

}  // namespace

TileFeasibility check_tiles(const LayerWorkload& wl, const HwConfig& cfg) {
  cfg.validate();
  return check_with_tile(wl, cfg, cfg.tile_h, cfg.tile_w);
}

std::size_t max_feasible_tile(const LayerWorkload& wl, const HwConfig& cfg) {
  cfg.validate();
  const std::size_t limit =
      std::max(wl.shape.out_h(), wl.shape.out_w());
  std::size_t best = 0;
  for (std::size_t t = 1; t <= limit; ++t) {
    if (check_with_tile(wl, cfg, t, t).feasible())
      best = t;
    else
      break;  // footprints grow monotonically with the tile side
  }
  return best;
}

std::vector<TileFeasibility> check_network_tiles(
    const core::NetworkShape& net, const core::BcmCompressionConfig& ccfg,
    const HwConfig& cfg) {
  std::vector<TileFeasibility> out;
  out.reserve(net.convs.size());
  for (const auto& c : net.convs) {
    LayerWorkload wl;
    wl.shape = c;
    wl.block_size = ccfg.block_size;
    wl.compressible = c.bcm_compressible(ccfg.block_size);
    wl.alpha = ccfg.alpha;
    out.push_back(check_tiles(wl, cfg));
  }
  return out;
}

}  // namespace rpbcm::hw

#include "hw/report_io.hpp"

#include <fstream>
#include <ostream>

#include "base/check.hpp"

namespace rpbcm::hw {

void write_layer_csv(const AcceleratorReport& report, std::ostream& os) {
  os << "layer,fft,emac,skip_check,ifft,input_read,weight_read,"
        "output_write,total\n";
  CycleBreakdown sum;
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const auto& l = report.layers[i];
    os << i << ',' << l.fft << ',' << l.emac << ',' << l.skip_check << ','
       << l.ifft << ',' << l.input_read << ',' << l.weight_read << ','
       << l.output_write << ',' << l.total << '\n';
    sum += l;
  }
  os << "total," << sum.fft << ',' << sum.emac << ',' << sum.skip_check
     << ',' << sum.ifft << ',' << sum.input_read << ',' << sum.weight_read
     << ',' << sum.output_write << ',' << sum.total << '\n';
  RPBCM_CHECK_MSG(os.good(), "CSV write failed");
}

void write_summary_markdown(const AcceleratorReport& report,
                            std::ostream& os) {
  os << "| network | cycles | latency (ms) | FPS | kLUT | DSP | BRAM36 | "
        "power (W) | FPS/kLUT | FPS/DSP | FPS/W |\n";
  os << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "| %s | %llu | %.2f | %.2f | %.1f | %zu | %.1f | %.2f | "
                "%.2f | %.3f | %.2f |\n",
                report.network.c_str(),
                static_cast<unsigned long long>(report.total_cycles),
                report.latency_ms, report.fps, report.resources.kilo_luts,
                report.resources.dsps, report.resources.bram36,
                report.power.total_w(), report.fps_per_klut(),
                report.fps_per_dsp(), report.fps_per_watt());
  os << buf;
  RPBCM_CHECK_MSG(os.good(), "markdown write failed");
}

void write_layer_csv(const AcceleratorReport& report,
                     const std::string& path) {
  std::ofstream os(path);
  RPBCM_CHECK_MSG(os.is_open(), "cannot open " << path);
  write_layer_csv(report, os);
}

void write_summary_markdown(const AcceleratorReport& report,
                            const std::string& path) {
  std::ofstream os(path);
  RPBCM_CHECK_MSG(os.is_open(), "cannot open " << path);
  write_summary_markdown(report, os);
}

}  // namespace rpbcm::hw

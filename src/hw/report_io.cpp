#include "hw/report_io.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

#include "base/check.hpp"

namespace rpbcm::hw {

namespace {

// RFC-4180 field quoting: wrap in double quotes when the value contains a
// comma, quote or newline; embedded quotes double up.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_layer_csv(const AcceleratorReport& report, std::ostream& os) {
  os << "layer,fft,emac,skip_check,ifft,input_read,weight_read,"
        "output_write,total\n";
  CycleBreakdown sum;
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const auto& l = report.layers[i];
    const std::string name =
        l.name.empty() ? "layer" + std::to_string(i) : l.name;
    os << csv_field(name) << ',' << l.fft << ',' << l.emac << ','
       << l.skip_check << ',' << l.ifft << ',' << l.input_read << ','
       << l.weight_read << ',' << l.output_write << ',' << l.total << '\n';
    sum += l;
  }
  os << "total," << sum.fft << ',' << sum.emac << ',' << sum.skip_check
     << ',' << sum.ifft << ',' << sum.input_read << ',' << sum.weight_read
     << ',' << sum.output_write << ',' << sum.total << '\n';
  RPBCM_CHECK_MSG(os.good(), "CSV write failed");
}

void write_summary_markdown(const AcceleratorReport& report,
                            std::ostream& os) {
  os << "| network | cycles | latency (ms) | FPS | kLUT | DSP | BRAM36 | "
        "power (W) | FPS/kLUT | FPS/DSP | FPS/W |\n";
  os << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  char buf[512];
  const int n = std::snprintf(
      buf, sizeof buf,
      "| %s | %llu | %.2f | %.2f | %.1f | %zu | %.1f | %.2f | "
      "%.2f | %.3f | %.2f |\n",
      report.network.c_str(),
      static_cast<unsigned long long>(report.total_cycles),
      report.latency_ms, report.fps, report.resources.kilo_luts,
      report.resources.dsps, report.resources.bram36,
      report.power.total_w(), report.fps_per_klut(),
      report.fps_per_dsp(), report.fps_per_watt());
  RPBCM_CHECK_MSG(n >= 0 && static_cast<std::size_t>(n) < sizeof buf,
                  "markdown row truncated (network name too long: "
                      << report.network.size() << " chars)");
  os << buf;
  RPBCM_CHECK_MSG(os.good(), "markdown write failed");
}

void export_report_metrics(const AcceleratorReport& report,
                           obs::Registry& registry) {
  registry.gauge("rpbcm.hw.report.total_cycles")
      .set(static_cast<double>(report.total_cycles));
  registry.gauge("rpbcm.hw.report.latency_ms").set(report.latency_ms);
  registry.gauge("rpbcm.hw.report.fps").set(report.fps);
  registry.gauge("rpbcm.hw.report.fps_per_watt").set(report.fps_per_watt());
  registry.gauge("rpbcm.hw.report.layers")
      .set(static_cast<double>(report.layers.size()));
  for (std::size_t s = 0; s < kPipelineStreams; ++s) {
    const std::string base =
        std::string("rpbcm.hw.report.stream.") + kStreamNames[s];
    const StreamStats& st = report.stream_stats[s];
    registry.gauge(base + ".busy_cycles").set(static_cast<double>(st.busy));
    registry.gauge(base + ".stall_data_cycles")
        .set(static_cast<double>(st.stall_data));
    registry.gauge(base + ".stall_buffer_cycles")
        .set(static_cast<double>(st.stall_buffer));
    registry.gauge(base + ".occupancy").set(report.stream_occupancy(s));
  }
}

void write_metrics_json(const obs::RegistrySnapshot& snapshot,
                        std::ostream& os) {
  snapshot.write_json(os);
  RPBCM_CHECK_MSG(os.good(), "metrics write failed");
}

void write_layer_csv(const AcceleratorReport& report,
                     const std::string& path) {
  std::ofstream os(path);
  RPBCM_CHECK_MSG(os.is_open(), "cannot open " << path);
  write_layer_csv(report, os);
  os.flush();
  RPBCM_CHECK_MSG(os.good(), "flush of " << path << " failed");
}

void write_summary_markdown(const AcceleratorReport& report,
                            const std::string& path) {
  std::ofstream os(path);
  RPBCM_CHECK_MSG(os.is_open(), "cannot open " << path);
  write_summary_markdown(report, os);
  os.flush();
  RPBCM_CHECK_MSG(os.good(), "flush of " << path << " failed");
}

void write_metrics_json(const obs::RegistrySnapshot& snapshot,
                        const std::string& path) {
  std::ofstream os(path);
  RPBCM_CHECK_MSG(os.is_open(), "cannot open " << path);
  write_metrics_json(snapshot, os);
  os.flush();
  RPBCM_CHECK_MSG(os.good(), "flush of " << path << " failed");
}

}  // namespace rpbcm::hw

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rpbcm::hw {

/// Per-tile cycle costs of the six pipeline streams of the fine-grained
/// dataflow (Fig. 8a): three off-chip accesses and three computations.
struct TileStreamCosts {
  std::uint64_t input_read = 0;
  std::uint64_t fft = 0;
  std::uint64_t weight_read = 0;
  std::uint64_t emac = 0;  // includes skip-index checks
  std::uint64_t ifft = 0;
  std::uint64_t output_write = 0;
};

/// Stream indices: topological order of the pipeline.
enum PipelineStream : std::size_t {
  kStreamInputRead = 0,
  kStreamFft = 1,
  kStreamWeightRead = 2,
  kStreamEmac = 3,
  kStreamIfft = 4,
  kStreamOutputWrite = 5,
  kPipelineStreams = 6,
};

/// Stable stream names used for trace tracks and metric names
/// (`rpbcm.hw.pipeline.<stream>.*`).
inline constexpr std::array<const char*, kPipelineStreams> kStreamNames = {
    "input_read", "fft", "weight_read", "emac", "ifft", "output_write"};

/// Aggregated engine accounting for one stream over a simulated schedule.
/// Idle cycles between consecutive tiles are attributed to whichever
/// dependency held the engine back: its producer's data not ready yet
/// ("data") or its consumer still holding the ping-pong buffer ("buffer").
/// Cycles outside [first start, last finish] — pipeline fill and drain —
/// are neither busy nor stall.
struct StreamStats {
  std::uint64_t busy = 0;
  std::uint64_t stall_data = 0;
  std::uint64_t stall_buffer = 0;

  StreamStats& operator+=(const StreamStats& o) {
    busy += o.busy;
    stall_data += o.stall_data;
    stall_buffer += o.stall_buffer;
    return *this;
  }
};

/// One scheduled (stream, tile) occurrence with its stall attribution.
/// `start - stall_data - stall_buffer` is the cycle the engine became free
/// (its previous tile's finish).
struct TileStreamEvent {
  std::uint32_t stream = 0;
  std::uint32_t tile = 0;
  std::uint64_t start = 0;
  std::uint64_t finish = 0;
  std::uint64_t stall_data = 0;
  std::uint64_t stall_buffer = 0;
};

/// Full schedule reconstruction of one simulate_tile_pipeline run: the raw
/// events (tile-major, stream-minor) plus per-stream busy/stall totals.
/// This is the data the obs layer turns into Chrome-trace tracks.
struct PipelineTrace {
  std::vector<TileStreamEvent> events;
  std::array<StreamStats, kPipelineStreams> streams{};
  std::uint64_t total_cycles = 0;

  /// Fraction of the schedule the stream's engine spent busy.
  double occupancy(std::size_t stream) const {
    return total_cycles > 0 ? static_cast<double>(streams[stream].busy) /
                                  static_cast<double>(total_cycles)
                            : 0.0;
  }
};

/// Event-level simulation of the tile pipeline with separated double
/// buffering. Each stream owns two buffers, so stream S can work on tile i
/// while its consumer drains tile i-1; the dependency recurrence is
///
///   start[S][i]  = max(finish[S][i-1],            (own engine busy)
///                      finish[producer(S)][i],    (data ready)
///                      finish[consumer(S)][i-2])  (ping-pong buffer free)
///
/// with the chain  input_read -> fft -> emac -> ifft -> output_write and
/// weight_read -> emac joining at the eMAC stage. This is the exact
/// semantics the analytic steady-state approximation (max of streams)
/// upper-bounds; tests cross-check the two.
///
/// When `trace` is non-null, fills it with the per-(stream, tile) schedule
/// and the per-stream stall attribution.
///
/// Returns the cycle at which the last output write finishes.
std::uint64_t simulate_tile_pipeline(const std::vector<TileStreamCosts>& tiles,
                                     PipelineTrace* trace = nullptr);

}  // namespace rpbcm::hw

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rpbcm::hw {

/// Per-tile cycle costs of the six pipeline streams of the fine-grained
/// dataflow (Fig. 8a): three off-chip accesses and three computations.
struct TileStreamCosts {
  std::uint64_t input_read = 0;
  std::uint64_t fft = 0;
  std::uint64_t weight_read = 0;
  std::uint64_t emac = 0;  // includes skip-index checks
  std::uint64_t ifft = 0;
  std::uint64_t output_write = 0;
};

/// Event-level simulation of the tile pipeline with separated double
/// buffering. Each stream owns two buffers, so stream S can work on tile i
/// while its consumer drains tile i-1; the dependency recurrence is
///
///   start[S][i]  = max(finish[S][i-1],            (own engine busy)
///                      finish[producer(S)][i],    (data ready)
///                      finish[consumer(S)][i-2])  (ping-pong buffer free)
///
/// with the chain  input_read -> fft -> emac -> ifft -> output_write and
/// weight_read -> emac joining at the eMAC stage. This is the exact
/// semantics the analytic steady-state approximation (max of streams)
/// upper-bounds; tests cross-check the two.
///
/// Returns the cycle at which the last output write finishes.
std::uint64_t simulate_tile_pipeline(const std::vector<TileStreamCosts>& tiles);

}  // namespace rpbcm::hw

#pragma once

#include <cstdint>

#include "hw/config.hpp"

namespace rpbcm::hw {

/// Work presented to one Pruned-BCM PE bank for one tile of one layer.
struct PeBankWork {
  std::size_t total_blocks = 0;  // K*K*(Cin/BS)*(Cout/BS)
  std::size_t live_blocks = 0;   // blocks whose skip-index bit is 1
  std::size_t tile_pixels = 0;   // output positions in the tile
  std::size_t block_size = 8;
};

/// Cycle cost of the eMAC stage for a tile.
///
/// Proposed PE (skip scheme, Fig. 7): the controller reads one skip-index
/// bit per block (skip_check_cycles); pruned blocks cost nothing further;
/// each surviving block is broadcast to p eMAC PEs which chew through the
/// tile's pixels in ceil(pixels/p) groups of (BS/2+1)-cycle MAC runs.
/// High parallelism is preserved under sparsity because all p PEs share
/// the same weight spectrum and skip together.
///
/// Conventional PE (no skip scheme): every block — pruned or not — is
/// computed; no check cost. This is the flat baseline of Fig. 10.
struct PeBankCycles {
  std::uint64_t emac = 0;
  std::uint64_t skip_check = 0;
  std::uint64_t total() const { return emac + skip_check; }
};

PeBankCycles pe_bank_cycles(const PeBankWork& work, const HwConfig& cfg);

}  // namespace rpbcm::hw

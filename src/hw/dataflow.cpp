#include "hw/dataflow.hpp"

#include <algorithm>
#include <cmath>

#include "hw/buffer_check.hpp"
#include "hw/dram.hpp"
#include "hw/emac_pe.hpp"
#include "hw/fft_pe.hpp"
#include "hw/pipeline_sim.hpp"
#include "hw/pruned_bcm_pe.hpp"
#include "obs/macros.hpp"
#include "hw/pipeline_trace.hpp"

namespace rpbcm::hw {

CycleBreakdown& CycleBreakdown::operator+=(const CycleBreakdown& o) {
  fft += o.fft;
  emac += o.emac;
  skip_check += o.skip_check;
  ifft += o.ifft;
  input_read += o.input_read;
  weight_read += o.weight_read;
  output_write += o.output_write;
  total += o.total;
  for (std::size_t s = 0; s < kPipelineStreams; ++s) streams[s] += o.streams[s];
  return *this;
}

namespace {

// Per-tile cycle figures before overlap composition.
struct TileCost {
  std::uint64_t fft = 0, emac = 0, skip = 0, ifft = 0;
  std::uint64_t in_rd = 0, w_rd = 0, out_wr = 0;

  std::uint64_t max_stream() const {
    return std::max({fft, emac + skip, ifft, in_rd, w_rd, out_wr});
  }
  std::uint64_t compute() const { return fft + emac + skip + ifft; }
  std::uint64_t transfer() const { return in_rd + w_rd + out_wr; }
  std::uint64_t sum() const { return compute() + transfer(); }
};

// Composes per-tile costs into a layer total under the given dataflow.
// Fine-grained: every stream is double-buffered against its producer and
// consumer; the exact pipelined schedule comes from the event-level
// simulator (hw/pipeline_sim.hpp). Monolithic: compute is one delay
// double-buffered against the combined transfer. Serial: everything adds
// up.
std::uint64_t compose(const std::vector<TileCost>& tiles, DataflowKind kind,
                      PipelineTrace* trace = nullptr) {
  if (kind == DataflowKind::kFineGrained) {
    std::vector<TileStreamCosts> streams;
    streams.reserve(tiles.size());
    for (const TileCost& t : tiles)
      streams.push_back(TileStreamCosts{t.in_rd, t.fft, t.w_rd,
                                        t.emac + t.skip, t.ifft, t.out_wr});
    return simulate_tile_pipeline(streams, trace);
  }
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileCost& t = tiles[i];
    switch (kind) {
      case DataflowKind::kMonolithic:
        total += std::max(t.compute(), t.transfer());
        if (i == 0) total += std::min(t.compute(), t.transfer());
        break;
      case DataflowKind::kSerial:
        total += t.sum();
        break;
      case DataflowKind::kFineGrained:
        break;  // handled above
    }
  }
  return total;
}

// Composes tiles under cfg.dataflow; for the fine-grained dataflow also
// reconstructs the per-stream schedule: stall breakdown into `out`, and —
// in instrumented builds — registry counters plus (when a trace session is
// live) one synthetic timeline track group per layer.
std::uint64_t compose_observed(const std::vector<TileCost>& tiles,
                               const HwConfig& cfg,
                               [[maybe_unused]] const std::string& name,
                               CycleBreakdown& out) {
  if (cfg.dataflow != DataflowKind::kFineGrained)
    return compose(tiles, cfg.dataflow);
  PipelineTrace trace;
  const std::uint64_t total = compose(tiles, cfg.dataflow, &trace);
  out.streams = trace.streams;
  RPBCM_OBS_ONLY({
    record_pipeline_metrics(trace, "rpbcm.hw.pipeline",
                            obs::Registry::global());
    auto& session = obs::TraceSession::global();
    if (session.enabled()) emit_pipeline_trace(trace, name, session);
  });
  return total;
}

}  // namespace

CycleBreakdown simulate_conv_layer(const LayerWorkload& wl,
                                   const HwConfig& cfg) {
  cfg.validate();
  const auto& s = wl.shape;
  const DramModel dram(cfg);
  const std::size_t bytes = cfg.data_bits / 8;
  CycleBreakdown out;
  out.name = s.name;

  if (!wl.compressible) {
    // Dense fallback: direct convolution on the multiplier pool.
    TileCost t;
    t.emac = s.dense_macs() / cfg.dense_macs_per_cycle + 1;
    t.in_rd = dram.transfer_cycles(
        static_cast<std::uint64_t>(s.in_channels) * s.in_h * s.in_w * bytes);
    t.w_rd = dram.transfer_cycles(
        static_cast<std::uint64_t>(s.dense_params()) * bytes);
    t.out_wr = dram.transfer_cycles(static_cast<std::uint64_t>(s.out_channels) *
                                    s.out_h() * s.out_w() * bytes);
    out.emac = t.emac;
    out.input_read = t.in_rd;
    out.weight_read = t.w_rd;
    out.output_write = t.out_wr;
    out.total = compose_observed({t}, cfg, s.name, out);
    return out;
  }

  const std::size_t bs = wl.block_size;
  RPBCM_CHECK_MSG(s.in_channels % bs == 0 && s.out_channels % bs == 0,
                  "workload marked compressible but channels do not divide BS");
  const std::size_t nbi = s.in_channels / bs;
  const std::size_t nbo = s.out_channels / bs;
  const std::size_t total_blocks = s.kernel * s.kernel * nbi * nbo;
  const auto pruned = static_cast<std::size_t>(
      static_cast<double>(total_blocks) * std::clamp(wl.alpha, 0.0, 1.0));
  const std::size_t live_blocks = total_blocks - pruned;

  const std::size_t ho = s.out_h(), wo = s.out_w();
  // Complex weight stream: surviving blocks, half spectrum, re+im.
  const std::uint64_t weight_bytes =
      static_cast<std::uint64_t>(live_blocks) * (bs / 2 + 1) * 2 * bytes +
      (total_blocks + 7) / 8;  // skip index, 1 bit per BCM

  // Per-layer tile selection: shrink the configured tile until the
  // input/output footprints fit on chip (stride-2 layers have big halos).
  std::size_t tile_h = cfg.tile_h, tile_w = cfg.tile_w;
  if (cfg.auto_tile) {
    const std::size_t feasible = max_feasible_tile(wl, cfg);
    RPBCM_CHECK_MSG(feasible > 0,
                    "layer " << s.name << " does not fit the buffers even "
                             "with a 1x1 tile");
    tile_h = std::min(tile_h, feasible);
    tile_w = std::min(tile_w, feasible);
  }

  std::vector<TileCost> tiles;
  for (std::size_t th = 0; th < ho; th += tile_h) {
    const std::size_t eff_h = std::min(tile_h, ho - th);
    for (std::size_t tw = 0; tw < wo; tw += tile_w) {
      const std::size_t eff_w = std::min(tile_w, wo - tw);
      TileCost t;
      const std::size_t tile_pixels = eff_h * eff_w;
      // Input patch feeding this output tile (stride/kernel halo included).
      const std::size_t in_h = (eff_h - 1) * s.stride + s.kernel;
      const std::size_t in_w = (eff_w - 1) * s.stride + s.kernel;
      const std::size_t in_pixels = in_h * in_w;

      // Channel tiling (Tm of Ma et al.): layers wider than the output
      // buffer process out-channel groups sequentially; the input tile is
      // re-read and re-FFT'd once per group.
      const std::size_t out_groups =
          (s.out_channels + cfg.tile_out_channels - 1) /
          cfg.tile_out_channels;

      // C_fft: one BS-point FFT per input pixel per input block per
      // out-channel pass, spread over the FFT PE bank.
      const std::uint64_t fft_count =
          static_cast<std::uint64_t>(in_pixels) * nbi * out_groups;
      t.fft = (fft_count + cfg.fft_units - 1) / cfg.fft_units *
              FftPe::cycles_per_transform(bs);

      // C_emac (+ skip checks) on the Pruned-BCM PE bank.
      PeBankWork work;
      work.total_blocks = total_blocks;
      work.live_blocks = live_blocks;
      work.tile_pixels = tile_pixels;
      work.block_size = bs;
      const PeBankCycles pc = pe_bank_cycles(work, cfg);
      t.emac = pc.emac;
      t.skip = pc.skip_check;

      // C_ifft: one per output pixel per output block (FFT modules reused).
      const std::uint64_t ifft_count =
          static_cast<std::uint64_t>(tile_pixels) * nbo;
      t.ifft = (ifft_count + cfg.fft_units - 1) / cfg.fft_units *
               FftPe::cycles_per_transform(bs);

      t.in_rd = dram.transfer_cycles(
          static_cast<std::uint64_t>(in_pixels) * s.in_channels * bytes *
          out_groups, out_groups);
      t.w_rd = dram.transfer_cycles(weight_bytes);
      t.out_wr = dram.transfer_cycles(
          static_cast<std::uint64_t>(tile_pixels) * s.out_channels * bytes);

      out.fft += t.fft;
      out.emac += t.emac;
      out.skip_check += t.skip;
      out.ifft += t.ifft;
      out.input_read += t.in_rd;
      out.weight_read += t.w_rd;
      out.output_write += t.out_wr;
      tiles.push_back(t);
    }
  }
  out.total = compose_observed(tiles, cfg, s.name, out);
  return out;
}

CycleBreakdown simulate_fc_layer(const core::LinearShape& fc,
                                 std::size_t block_size, bool compressible,
                                 double alpha, const HwConfig& cfg) {
  LayerWorkload wl;
  wl.shape.name = fc.name;
  wl.shape.kernel = 1;
  wl.shape.in_channels = fc.in_features;
  wl.shape.out_channels = fc.out_features;
  wl.shape.in_h = 1;
  wl.shape.in_w = 1;
  wl.shape.stride = 1;
  wl.shape.pad = 0;
  wl.block_size = block_size;
  wl.compressible = compressible && fc.bcm_compressible(block_size);
  wl.alpha = alpha;
  return simulate_conv_layer(wl, cfg);
}

std::uint64_t simulate_network_cycles(const core::NetworkShape& net,
                                      const core::BcmCompressionConfig& ccfg,
                                      const HwConfig& hcfg,
                                      std::vector<CycleBreakdown>* per_layer) {
  std::uint64_t total = 0;
  for (const auto& c : net.convs) {
    LayerWorkload wl;
    wl.shape = c;
    wl.block_size = ccfg.block_size;
    wl.compressible = c.bcm_compressible(ccfg.block_size);
    wl.alpha = ccfg.alpha;
    const auto br = simulate_conv_layer(wl, hcfg);
    total += br.total;
    if (per_layer) per_layer->push_back(br);
  }
  for (const auto& f : net.fcs) {
    const auto br = simulate_fc_layer(f, ccfg.block_size, ccfg.compress_fc,
                                      ccfg.alpha, hcfg);
    total += br.total;
    if (per_layer) per_layer->push_back(br);
  }
  return total;
}

}  // namespace rpbcm::hw

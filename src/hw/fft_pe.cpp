#include "hw/fft_pe.hpp"

#include <cmath>
#include <numbers>

#include "base/check.hpp"
#include "numeric/fft.hpp"

namespace rpbcm::hw {

FftPe::FftPe(std::size_t bs)
    : bs_(bs), log2_bs_(numeric::log2_exact(bs)) {
  twiddle_.resize(bs / 2);
  for (std::size_t k = 0; k < twiddle_.size(); ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(bs);
    twiddle_[k] = CFix16::from_floats(static_cast<float>(std::cos(ang)),
                                      static_cast<float>(std::sin(ang)));
  }
  if (bs == 1) twiddle_.assign(1, CFix16::from_floats(1.0F, 0.0F));
}

namespace {

void bit_reverse(std::vector<CFix16>& d) {
  const std::size_t n = d.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(d[i], d[j]);
  }
}

}  // namespace

std::vector<CFix16> FftPe::forward(std::vector<CFix16> data) const {
  RPBCM_CHECK_MSG(data.size() == bs_, "FFT PE block size mismatch");
  if (bs_ <= 1) return data;
  bit_reverse(data);
  for (std::size_t len = 2; len <= bs_; len <<= 1) {
    const std::size_t stride = bs_ / len;
    for (std::size_t i = 0; i < bs_; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const CFix16 w = twiddle_[k * stride];
        const CFix16 u = data[i + k];
        const CFix16 v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
  return data;
}

std::vector<CFix16> FftPe::forward_real(std::span<const Fix16> x) const {
  RPBCM_CHECK(x.size() == bs_);
  std::vector<CFix16> d(bs_);
  for (std::size_t i = 0; i < bs_; ++i) d[i] = CFix16{x[i], Fix16{}};
  return forward(std::move(d));
}

std::vector<CFix16> FftPe::inverse(std::span<const CFix16> spec) const {
  RPBCM_CHECK(spec.size() == bs_);
  std::vector<CFix16> d(spec.begin(), spec.end());
  for (auto& v : d) v = v.conj();
  d = forward(std::move(d));
  const int sh = static_cast<int>(log2_bs_);
  for (auto& v : d) v = v.conj().shift_right(sh);
  return d;
}

std::vector<Fix16> FftPe::inverse_real(std::span<const CFix16> spec) const {
  auto d = inverse(spec);
  std::vector<Fix16> out(bs_);
  for (std::size_t i = 0; i < bs_; ++i) out[i] = d[i].re;
  return out;
}

std::uint64_t FftPe::cycles_per_transform(std::size_t n) {
  return numeric::fft_butterfly_count(n);
}

}  // namespace rpbcm::hw

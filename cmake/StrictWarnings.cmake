# Raised warning floor for the numeric-heavy libraries.
#
# The FFT / eMAC / block-size arithmetic is where narrowing and sign bugs
# hide (a silently truncated block index corrupts a whole spectrum), so the
# targets that own that math compile with -Wconversion -Wshadow
# -Wdouble-promotion on top of the global -Wall -Wextra. Call
# rpbcm_strict_warnings(<target>) to opt a target in.
#
# RPBCM_WERROR=ON additionally turns all warnings into errors tree-wide
# (used by tools/ci.sh; off by default so exploratory builds stay friendly).

option(RPBCM_WERROR "Treat compiler warnings as errors" OFF)

if(RPBCM_WERROR)
  add_compile_options(-Werror)
endif()

function(rpbcm_strict_warnings target)
  target_compile_options(${target} PRIVATE
      -Wconversion -Wshadow -Wdouble-promotion)
endfunction()

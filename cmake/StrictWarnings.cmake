# Raised warning floor for the first-party libraries.
#
# The FFT / eMAC / block-size arithmetic is where narrowing and sign bugs
# hide (a silently truncated block index corrupts a whole spectrum), so the
# targets that own that math compile with -Wconversion -Wshadow
# -Wdouble-promotion on top of the global -Wall -Wextra. Call
# rpbcm_strict_warnings(<target>) to opt a target in. Every src/ library
# target is opted in (PR 2 seeded numeric/core/tensor/hw/obs; base/nn/
# models joined with the static-guarantees pass).
#
# Under Clang the floor additionally includes -Wthread-safety: the
# RPBCM_GUARDED_BY / RPBCM_REQUIRES annotations (src/base/
# thread_annotations.hpp) turn the repo's lock discipline into
# compile-checked contracts. GCC ignores the attributes, so the flag is
# Clang-only; tools/ci.sh builds one Clang configuration with
# -Wthread-safety -Werror when a clang++ is available
# (docs/static_analysis.md).
#
# RPBCM_WERROR=ON additionally turns all warnings into errors tree-wide
# (used by tools/ci.sh; off by default so exploratory builds stay friendly).

option(RPBCM_WERROR "Treat compiler warnings as errors" OFF)

if(RPBCM_WERROR)
  add_compile_options(-Werror)
endif()

if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  # Tree-wide, not per-target: a guarded field touched from an unannotated
  # TU is exactly the bug the analysis exists to catch.
  add_compile_options(-Wthread-safety)
endif()

function(rpbcm_strict_warnings target)
  target_compile_options(${target} PRIVATE
      -Wconversion -Wshadow -Wdouble-promotion)
endfunction()

# Sanitizer wiring for the whole tree.
#
# RPBCM_SANITIZE is a semicolon/comma-separated sanitizer list applied to
# every target (compile + link). Supported configurations:
#
#   -DRPBCM_SANITIZE="address;undefined"   ASan + UBSan (the default CI pair)
#   -DRPBCM_SANITIZE=thread                TSan (mutually exclusive with ASan)
#
# When a sanitizer is active, tests/CMakeLists.txt labels every test `san`
# so `ctest -L san` runs the whole suite under that sanitizer. Runtime
# options (suppression files, halt-on-error) are wired through the asan/
# tsan test presets in CMakePresets.json and tools/ci.sh; the suppression
# files live in tools/sanitizers/.

set(RPBCM_SANITIZE "" CACHE STRING
    "Sanitizers to build with: e.g. 'address;undefined' or 'thread'")

if(RPBCM_SANITIZE)
  string(REPLACE ";" "," _rpbcm_san_csv "${RPBCM_SANITIZE}")
  if(_rpbcm_san_csv MATCHES "thread" AND _rpbcm_san_csv MATCHES "address")
    message(FATAL_ERROR
        "RPBCM_SANITIZE: 'thread' cannot be combined with 'address' "
        "(TSan and ASan use incompatible shadow memory). Configure two "
        "build trees instead.")
  endif()

  set(RPBCM_SANITIZE_FLAGS
      -fsanitize=${_rpbcm_san_csv} -fno-omit-frame-pointer -g)
  if(_rpbcm_san_csv MATCHES "undefined")
    # Make every UBSan finding fatal; otherwise reports scroll by and the
    # test still exits 0.
    list(APPEND RPBCM_SANITIZE_FLAGS -fno-sanitize-recover=all)
  endif()

  add_compile_options(${RPBCM_SANITIZE_FLAGS})
  add_link_options(${RPBCM_SANITIZE_FLAGS})
  message(STATUS "rpbcm: building with -fsanitize=${_rpbcm_san_csv}")
endif()

// Reproduces Fig. 10: execution-cycle estimation of one ResNet-18 layer
// (feature map 128x28x28, 3x3 kernel) as a function of the pruning ratio
// alpha, for the proposed skip-scheme PE and the conventional PE. Also
// reports the skip-check overhead at alpha = 0 (paper: 3.1%).

// Observability:  --trace-out=<file>.json    per-layer pipeline timelines
//                 --metrics-out=<file>.json  per-stream cycle/stall counters

#include <cstdio>

#include "bench_util.hpp"
#include "hw/dataflow.hpp"
#include "obs/cli.hpp"

using namespace rpbcm;

namespace {

hw::LayerWorkload fig10_layer(double alpha) {
  hw::LayerWorkload wl;
  wl.shape.name = "resnet18-conv3.x";
  wl.shape.kernel = 3;
  wl.shape.in_channels = 128;
  wl.shape.out_channels = 128;
  wl.shape.in_h = 28;
  wl.shape.in_w = 28;
  wl.shape.stride = 1;
  wl.shape.pad = 1;
  wl.block_size = 8;
  wl.compressible = true;
  wl.alpha = alpha;
  return wl;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Fig. 10",
                    "execution cycles vs pruning ratio (layer 128x28x28, "
                    "K=3, BS=8)");

  hw::HwConfig proposed;
  hw::HwConfig conventional;
  conventional.skip_scheme = false;

  std::printf("%8s %18s %18s %14s\n", "alpha", "proposed (cycles)",
              "conventional", "reduction");
  benchutil::rule();
  std::uint64_t prop_a0 = 0, conv_a0 = 0;
  for (double alpha = 0.0; alpha < 0.95; alpha += 0.1) {
    const auto bp = hw::simulate_conv_layer(fig10_layer(alpha), proposed);
    const auto bc = hw::simulate_conv_layer(fig10_layer(alpha), conventional);
    if (alpha == 0.0) {
      prop_a0 = bp.compute_total();
      conv_a0 = bc.compute_total();
    }
    std::printf("%8.1f %18llu %18llu %13.1f%%\n", alpha,
                static_cast<unsigned long long>(bp.compute_total()),
                static_cast<unsigned long long>(bc.compute_total()),
                (1.0 - static_cast<double>(bp.compute_total()) /
                           static_cast<double>(conv_a0)) *
                    100.0);
  }
  benchutil::rule();
  std::printf("skip-check overhead at alpha=0: %.2f%%  (paper: 3.1%%)\n",
              (static_cast<double>(prop_a0) / static_cast<double>(conv_a0) -
               1.0) * 100.0);
  benchutil::note(
      "proposed PE cycles fall ~linearly with alpha; conventional PE is "
      "flat because it computes pruned blocks anyway");
  obs::dump_outputs(obs_opts);
  return 0;
}

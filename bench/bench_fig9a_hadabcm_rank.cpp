// Reproduces Fig. 9a and the Section V-B1 rank statistics: the singular
// values of trained hadaBCM blocks decay much more linearly than trained
// plain-BCM blocks (paper: 72.2% of plain-BCM blocks in poor
// rank-condition vs 2.1% for hadaBCM).

#include <cstdio>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "core/pruning.hpp"
#include "core/rank_analysis.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace rpbcm;

namespace {

struct Trained {
  std::unique_ptr<nn::Sequential> model;
  double accuracy = 0.0;
};

Trained train(models::ConvKind kind, std::size_t bs) {
  models::ScaledNetConfig cfg;
  cfg.base_width = 32;
  cfg.classes = 16;
  cfg.kind = kind;
  cfg.block_size = bs;
  Trained t;
  t.model = models::make_scaled_vgg(cfg);
  nn::SyntheticSpec dspec;
  dspec.classes = 16;
  dspec.train = 1024;
  dspec.test = 256;
  dspec.noise = 1.1F;        // hard task: gradients stay alive (no
  dspec.phase_jitter = 1.3F; // saturation), so spectra keep evolving
  dspec.seed = 29;
  const nn::SyntheticImageDataset data(dspec);
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.steps_per_epoch = 20;
  tc.batch = 16;
  tc.lr = 0.05F;
  tc.seed = 43;
  nn::Trainer trainer(*t.model, data, tc);
  trainer.train();
  t.accuracy = trainer.evaluate();
  return t;
}

struct Summary {
  std::vector<float> curve;
  double poor_fraction = 0.0;
  double eff_rank = 0.0;
  double slope = 0.0;
  std::size_t units = 0;
};

Summary summarize(nn::Sequential& model) {
  Summary s;
  auto set = core::BcmLayerSet::collect(model);
  std::vector<double> acc;
  double poor = 0.0, eff = 0.0, slope = 0.0;
  for (auto* layer : set.convs()) {
    const auto curve = core::mean_bcm_decay_curve(*layer);
    if (acc.empty()) acc.assign(curve.size(), 0.0);
    for (std::size_t k = 0; k < curve.size(); ++k) acc[k] += curve[k];
    const auto r = core::analyze_bcm_layer(*layer);
    poor += static_cast<double>(r.poor_units);
    eff += r.mean_effective_rank * static_cast<double>(r.total_units);
    slope += r.mean_decay_slope * static_cast<double>(r.total_units);
    s.units += r.total_units;
  }
  s.curve.resize(acc.size());
  for (std::size_t k = 0; k < acc.size(); ++k)
    s.curve[k] =
        static_cast<float>(acc[k] / static_cast<double>(set.convs().size()));
  if (s.units) {
    s.poor_fraction = poor / static_cast<double>(s.units);
    s.eff_rank = eff / static_cast<double>(s.units);
    s.slope = slope / static_cast<double>(s.units);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Fig. 9a", "hadaBCM repairs the BCM rank condition");

  const std::size_t bs = 16;  // same block as the left panel of Fig. 2
  auto plain = train(models::ConvKind::kBcm, bs);
  auto hada = train(models::ConvKind::kHadaBcm, bs);

  const auto sp = summarize(*plain.model);
  const auto sh = summarize(*hada.model);

  std::printf("normalized singular-value decay (mean over all %zu-size "
              "blocks):\n", bs);
  benchutil::print_series("BCM (trained)", sp.curve);
  benchutil::print_series("hadaBCM (trained)", sh.curve);
  benchutil::rule();
  std::printf("%-24s %14s %14s\n", "", "BCM", "hadaBCM");
  std::printf("%-24s %13.1f%% %13.1f%%\n", "poor rank-condition",
              sp.poor_fraction * 100.0, sh.poor_fraction * 100.0);
  std::printf("%-24s %14.2f %14.2f\n", "mean effective rank", sp.eff_rank,
              sh.eff_rank);
  std::printf("%-24s %14.3f %14.3f\n", "mean log-decay slope", sp.slope,
              sh.slope);
  std::printf("%-24s %13.1f%% %13.1f%%\n", "test accuracy",
              plain.accuracy * 100.0, hada.accuracy * 100.0);
  benchutil::rule();

  // Converged-regime model (see core/rank_analysis.hpp and DESIGN.md): at
  // the spectral statistics of fully-trained BCM layers, the Hadamard
  // product of two factors — whose spectra convolve — repairs the rank.
  std::printf("converged-regime statistical model (BS=16, tau sweep):\n");
  std::printf("%8s %16s %18s\n", "tau", "BCM poor(%)", "hadaBCM poor(%)");
  numeric::Rng rng(71);
  for (double tau : {0.8, 1.0, 1.3, 1.8}) {
    const double p = core::synth_bcm_poor_fraction(16, tau, 500, rng);
    const double h = core::synth_hadabcm_poor_fraction(16, tau, 500, rng);
    std::printf("%8.1f %15.1f%% %17.1f%%\n", tau, p * 100.0, h * 100.0);
  }
  std::printf("model decay curves at tau=1.0:\n");
  benchutil::print_series("BCM (model)",
                          core::synth_decay_curve(16, 1.0, 400, false, rng));
  benchutil::print_series("hadaBCM (model)",
                          core::synth_decay_curve(16, 1.0, 400, true, rng));
  benchutil::rule();
  std::printf("paper: 72.2%% poor (BCM) vs 2.1%% poor (hadaBCM) on "
              "VGG-16/Cifar-10\n");
  benchutil::note(
      "expected shape: hadaBCM decays more linearly, has a much smaller "
      "poor-rank fraction, and trains to equal-or-better accuracy at "
      "identical deployed size");
  obs::dump_outputs(obs_opts);
  return 0;
}

// Reproduces Table II: resource estimation with and without the proposed
// skip scheme, at identical PE parallelism and identical dataflow.

#include <cstdio>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "hw/resource_model.hpp"

using namespace rpbcm;

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Table II", "resource estimation with the skip scheme");

  hw::HwConfig with;       // proposed Pruned-BCM PE (skip scheme on)
  hw::HwConfig without;    // conventional PE
  without.skip_scheme = false;

  const auto rw = hw::estimate_resources(with);
  const auto ro = hw::estimate_resources(without);

  std::printf("%-28s %12s %12s %12s\n", "Design", "kLUT", "DSP", "BRAM36");
  benchutil::rule();
  std::printf("%-28s %12.1f %12zu %12.1f\n", "Conventional PE (no skip)",
              ro.kilo_luts, ro.dsps, ro.bram36);
  std::printf("%-28s %12.1f %12zu %12.1f\n", "Proposed PE (skip scheme)",
              rw.kilo_luts, rw.dsps, rw.bram36);
  std::printf("%-28s %+12.1f %+12d %+12.1f\n", "Overhead",
              rw.kilo_luts - ro.kilo_luts,
              static_cast<int>(rw.dsps) - static_cast<int>(ro.dsps),
              rw.bram36 - ro.bram36);
  std::printf("%-28s %11.1f%% %11.1f%% %11.1f%%\n", "Overhead (relative)",
              (rw.kilo_luts / ro.kilo_luts - 1.0) * 100.0,
              (static_cast<double>(rw.dsps) / static_cast<double>(ro.dsps) -
               1.0) * 100.0,
              (rw.bram36 / ro.bram36 - 1.0) * 100.0);
  benchutil::rule();
  std::printf("Board (XC7Z020): %.1f kLUT, %zu DSP, %.0f BRAM36\n",
              with.board.kilo_luts, with.board.dsps, with.board.bram36);
  std::printf("Utilization with skip scheme: %.0f%% LUT, %.0f%% DSP, "
              "%.0f%% BRAM\n",
              rw.lut_util(with.board) * 100.0,
              rw.dsp_util(with.board) * 100.0,
              rw.bram_util(with.board) * 100.0);
  benchutil::note(
      "paper claim: the skip scheme adds a negligible sliver of logic "
      "(1 bit per BCM index buffer + controller), zero DSPs");
  obs::dump_outputs(obs_opts);
  return 0;
}

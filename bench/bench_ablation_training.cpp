// Training-method ablation: three routes to a BCM-compressed network at
// the same deployed size (BS=8):
//   (a) from-scratch plain-BCM training (the paper's baseline [4]),
//   (b) ADMM-regularized dense training + hard projection (the
//       CirCNN/REQ-YOLO recipe [4][6]),
//   (c) from-scratch hadaBCM training (the paper's Stage 1).
// Plus the dense reference. Reports accuracy, constraint violation along
// the ADMM path, and the rank condition of the resulting blocks.

#include <cstdio>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "core/admm.hpp"
#include "core/pruning.hpp"
#include "core/rank_analysis.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace rpbcm;

namespace {

constexpr std::size_t kBs = 8;

nn::SyntheticSpec dataset_spec() {
  nn::SyntheticSpec d;
  d.classes = 16;
  d.train = 1024;
  d.test = 256;
  d.noise = 1.1F;
  d.phase_jitter = 1.3F;
  d.seed = 77;
  return d;
}

nn::TrainConfig train_cfg() {
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.steps_per_epoch = 20;
  tc.batch = 16;
  tc.lr = 0.05F;
  tc.seed = 79;
  return tc;
}

models::ScaledNetConfig model_cfg(models::ConvKind kind) {
  models::ScaledNetConfig cfg;
  cfg.base_width = 32;
  cfg.classes = 16;
  cfg.kind = kind;
  cfg.block_size = kBs;
  return cfg;
}

double mean_eff_rank(nn::Sequential& model) {
  auto set = core::BcmLayerSet::collect(model);
  if (set.convs().empty()) return 0.0;
  double acc = 0.0;
  std::size_t units = 0;
  for (auto* l : set.convs()) {
    const auto r = core::analyze_bcm_layer(*l);
    acc += r.mean_effective_rank * static_cast<double>(r.total_units);
    units += r.total_units;
  }
  return acc / static_cast<double>(units);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Training ablation",
                    "from-scratch BCM vs ADMM projection vs hadaBCM (BS=8)");
  const nn::SyntheticImageDataset data(dataset_spec());

  std::printf("%-38s %12s %14s\n", "method", "accuracy(%)", "eff.rank");
  benchutil::rule();

  // Dense reference.
  {
    auto model = models::make_scaled_vgg(model_cfg(models::ConvKind::kDense));
    nn::Trainer trainer(*model, data, train_cfg());
    trainer.train();
    std::printf("%-38s %12.1f %14s\n", "dense reference",
                trainer.evaluate() * 100.0, "-");
  }

  // (a) from-scratch plain BCM.
  {
    auto model = models::make_scaled_vgg(model_cfg(models::ConvKind::kBcm));
    nn::Trainer trainer(*model, data, train_cfg());
    trainer.train();
    std::printf("%-38s %12.1f %14.2f\n", "(a) from-scratch BCM [4]",
                trainer.evaluate() * 100.0, mean_eff_rank(*model));
  }

  // (b) ADMM-regularized dense training + hard projection + fine-tune of
  // the projected (now-circulant) weights via from_dense conversion.
  {
    auto model = models::make_scaled_vgg(model_cfg(models::ConvKind::kDense));
    core::AdmmCirculantRegularizer admm(*model, kBs, 0.05F);
    const double acc_relaxed = admm_train(*model, admm, data, train_cfg());
    const double violation = admm.constraint_violation();
    admm.project_hard();
    // Accuracy after the hard projection (no fine-tuning — the honest
    // measure of how close ADMM got to the constraint set).
    nn::Trainer eval(*model, data, train_cfg());
    const double acc_projected = eval.evaluate();
    std::printf("%-38s %12.1f %14s\n",
                "(b) ADMM relaxed (pre-projection)", acc_relaxed * 100.0,
                "-");
    std::printf("%-38s %12.1f %14s\n", "(b) ADMM hard-projected",
                acc_projected * 100.0, "-");
    const double acc_ft =
        core::projected_finetune(*model, admm, data, train_cfg(), 3, 0.02F);
    std::printf("%-38s %12.1f %14s\n",
                "(b) ADMM projected + fine-tuned", acc_ft * 100.0, "-");
    std::printf("    constraint violation before projection: %.4f\n",
                violation);
  }

  // (c) from-scratch hadaBCM (the paper's Stage 1).
  {
    auto model =
        models::make_scaled_vgg(model_cfg(models::ConvKind::kHadaBcm));
    auto tc = train_cfg();
    tc.epochs = 10;  // two-factor parameterization converges more slowly
    nn::Trainer trainer(*model, data, tc);
    trainer.train();
    std::printf("%-38s %12.1f %14.2f\n", "(c) hadaBCM (paper Stage 1)",
                trainer.evaluate() * 100.0, mean_eff_rank(*model));
  }

  benchutil::rule();
  benchutil::note(
      "expected: ADMM needs the relaxed phase to approach the constraint "
      "set (violation << 1) or projection costs accuracy; hadaBCM matches "
      "or beats plain BCM at identical deployed size with higher "
      "effective rank");
  obs::dump_outputs(obs_opts);
  return 0;
}

// Ablation bench for the design choices DESIGN.md calls out:
//   (1) fine-grained dataflow vs monolithic double-buffering vs serial,
//   (2) skip scheme on/off across pruning ratios,
//   (3) PE-bank parallelism p sweep,
//   (4) DRAM bandwidth sensitivity,
//   (5) tile-size sweep.
// All on the ResNet-18/ImageNet descriptor at the Table III operating
// point (BS=8, alpha=0.5) unless noted.

//   (6) frequency-domain weight quantization (the paper's future-work
//       pointer, refs [6][29]): accuracy and spectral SNR vs bit width.

#include <cstdio>
#include <sstream>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "core/frequency_quant.hpp"
#include "core/pruning.hpp"
#include "core/serialization.hpp"
#include "hw/accelerator.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace rpbcm;

namespace {

core::BcmCompressionConfig op_point() {
  core::BcmCompressionConfig c;
  c.block_size = 8;
  c.alpha = 0.5;
  return c;
}

double fps_for(const hw::HwConfig& cfg, double alpha = 0.5) {
  auto cc = op_point();
  cc.alpha = alpha;
  const auto net = models::resnet18_imagenet_shape();
  return hw::simulate_accelerator(net, cc, cfg).fps;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Ablations", "dataflow / skip scheme / p / bandwidth / "
                                 "tiles on ResNet-18");

  {
    std::printf("\n(1) dataflow composition (Section IV-C)\n");
    std::printf("%-40s %10s %10s\n", "dataflow", "FPS", "vs serial");
    benchutil::rule();
    hw::HwConfig serial;
    serial.dataflow = hw::DataflowKind::kSerial;
    const double fps_serial = fps_for(serial);
    for (auto [name, kind] :
         {std::pair{"serial (no double buffering)",
                    hw::DataflowKind::kSerial},
          std::pair{"monolithic FFT-eMAC-IFFT delay",
                    hw::DataflowKind::kMonolithic},
          std::pair{"fine-grained (proposed)",
                    hw::DataflowKind::kFineGrained}}) {
      hw::HwConfig cfg;
      cfg.dataflow = kind;
      const double fps = fps_for(cfg);
      std::printf("%-40s %10.2f %9.2fx\n", name, fps, fps / fps_serial);
    }
  }

  {
    std::printf("\n(2) skip scheme vs conventional PE across alpha\n");
    std::printf("%8s %14s %14s %10s\n", "alpha", "proposed FPS",
                "conventional", "speedup");
    benchutil::rule();
    for (double alpha : {0.0, 0.25, 0.5, 0.75}) {
      hw::HwConfig prop, conv;
      conv.skip_scheme = false;
      const double fp = fps_for(prop, alpha);
      const double fc = fps_for(conv, alpha);
      std::printf("%8.2f %14.2f %14.2f %9.2fx\n", alpha, fp, fc, fp / fc);
    }
  }

  {
    std::printf("\n(3) PE-bank parallelism p (DSP cost scales with p)\n");
    std::printf("%8s %10s %10s %12s\n", "p", "FPS", "DSPs", "FPS/DSP");
    benchutil::rule();
    for (std::size_t p : {4u, 8u, 16u, 32u, 48u}) {
      hw::HwConfig cfg;
      cfg.parallelism = p;
      const auto net = models::resnet18_imagenet_shape();
      const auto r = hw::simulate_accelerator(net, op_point(), cfg);
      std::printf("%8zu %10.2f %10zu %12.3f\n", p, r.fps, r.resources.dsps,
                  r.fps_per_dsp());
    }
  }

  {
    std::printf("\n(4) DRAM bandwidth sensitivity\n");
    std::printf("%12s %10s\n", "GB/s", "FPS");
    benchutil::rule();
    for (double bw : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      hw::HwConfig cfg;
      cfg.dram_gbps = bw;
      std::printf("%12.2f %10.2f\n", bw, fps_for(cfg));
    }
  }

  {
    std::printf("\n(5) output tile size\n");
    std::printf("%12s %10s\n", "tile", "FPS");
    benchutil::rule();
    for (std::size_t t : {7u, 14u, 28u, 56u}) {
      hw::HwConfig cfg;
      cfg.tile_h = cfg.tile_w = t;
      std::printf("%9zux%-2zu %10.2f\n", t, t, fps_for(cfg));
    }
  }

  {
    std::printf("\n(6) frequency-domain weight quantization (refs [6][29])\n");
    // Train a small hadaBCM model once, snapshot it, then quantize the
    // deployed spectra at decreasing widths and measure accuracy.
    models::ScaledNetConfig mcfg;
    mcfg.base_width = 16;
    mcfg.classes = 16;
    mcfg.kind = models::ConvKind::kHadaBcm;
    mcfg.block_size = 8;
    auto model = models::make_scaled_vgg(mcfg);
    nn::SyntheticSpec dspec;
    dspec.classes = 16;
    dspec.train = 768;
    dspec.test = 256;
    dspec.noise = 1.2F;     // hard task: quantization damage is visible
    dspec.phase_jitter = 1.3F;
    const nn::SyntheticImageDataset data(dspec);
    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.steps_per_epoch = 20;
    tc.batch = 16;
    nn::Trainer trainer(*model, data, tc);
    trainer.train();
    std::stringstream snap;
    core::save_checkpoint(*model, snap);
    const double float_acc = trainer.evaluate();
    std::printf("%8s %12s %12s\n", "bits", "accuracy", "min SNR(dB)");
    benchutil::rule();
    std::printf("%8s %11.1f%% %12s\n", "float", float_acc * 100.0, "-");
    for (std::size_t bits : {16u, 12u, 10u, 8u, 6u, 4u}) {
      snap.clear();
      snap.seekg(0);
      core::load_checkpoint(*model, snap);
      const auto stats = core::quantize_model_frequency_weights(*model, bits);
      double min_snr = 1e30;
      for (const auto& st : stats) min_snr = std::min(min_snr, st.snr_db);
      std::printf("%8zu %11.1f%% %12.1f\n", bits, trainer.evaluate() * 100.0,
                  min_snr);
    }
  }

  std::printf("\n");
  benchutil::note(
      "expected: fine-grained > monolithic > serial; skip-scheme speedup "
      "~1/(1-alpha) at high alpha; FPS saturates in p once transfers "
      "dominate; accuracy holds down to ~8-bit frequency-domain weights");
  obs::dump_outputs(obs_opts);
  return 0;
}

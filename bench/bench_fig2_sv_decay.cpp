// Reproduces Fig. 2: singular-value decay of (i) original convolution
// units, (ii) a Gaussian random matrix, and (iii) trained BCM blocks, at
// unit sizes 16x16 (left panel) and 32x32 (right panel). The paper trains
// VGG-16 on Cifar-10; we train the scaled VGG proxy on the synthetic
// stand-in (DESIGN.md substitutions) — the rank pathology is a property of
// the BCM parameterization under training, not of the dataset.

#include <cstdio>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "core/pruning.hpp"
#include "core/rank_analysis.hpp"
#include "numeric/stats.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace rpbcm;

namespace {

nn::SyntheticSpec dataset_spec() {
  nn::SyntheticSpec s;
  s.classes = 16;
  s.train = 1024;
  s.test = 256;
  s.noise = 1.1F;            // hard task: gradients stay alive (no
  s.phase_jitter = 1.3F;     // saturation), so spectra keep evolving
  s.seed = 23;
  return s;
}

nn::TrainConfig train_cfg() {
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.steps_per_epoch = 20;
  tc.batch = 16;
  tc.lr = 0.05F;
  tc.seed = 41;
  return tc;
}

// Trains a scaled VGG of the given kind and returns the model.
std::unique_ptr<nn::Sequential> train_model(models::ConvKind kind,
                                            std::size_t bs, double* acc) {
  models::ScaledNetConfig cfg;
  cfg.base_width = 32;
  cfg.classes = 16;
  cfg.kind = kind;
  cfg.block_size = bs;
  auto model = models::make_scaled_vgg(cfg);
  const nn::SyntheticImageDataset data(dataset_spec());
  nn::Trainer trainer(*model, data, train_cfg());
  trainer.train();
  if (acc) *acc = trainer.evaluate();
  return model;
}

// Mean normalized SV curve over the BS x BS units of the first dense conv
// with enough channels.
std::vector<float> dense_unit_curve(nn::Sequential& model, std::size_t unit) {
  std::vector<double> acc;
  std::size_t count = 0;
  model.visit([&](nn::Layer& l) {
    auto* conv = dynamic_cast<nn::Conv2d*>(&l);
    if (!conv) return;
    const auto& s = conv->spec();
    if (s.in_channels % unit != 0 || s.out_channels % unit != 0) return;
    for (std::size_t kh = 0; kh < s.kernel; ++kh)
      for (std::size_t kw = 0; kw < s.kernel; ++kw)
        for (std::size_t bi = 0; bi < s.in_channels / unit; ++bi)
          for (std::size_t bo = 0; bo < s.out_channels / unit; ++bo) {
            auto sv = core::dense_unit_sv(*conv, unit, kh, kw, bi, bo);
            const auto norm = numeric::normalize_by_max(sv);
            if (acc.empty()) acc.assign(unit, 0.0);
            for (std::size_t k = 0; k < unit; ++k) acc[k] += norm[k];
            ++count;
          }
  });
  std::vector<float> out(unit, 0.0F);
  if (count)
    for (std::size_t k = 0; k < unit; ++k)
      out[k] = static_cast<float>(acc[k] / static_cast<double>(count));
  return out;
}

// Aggregated rank report over all BCM layers of a model.
core::RankReport aggregate_bcm_report(nn::Sequential& model) {
  core::RankReport total;
  auto set = core::BcmLayerSet::collect(model);
  for (auto* layer : set.convs()) {
    const auto r = core::analyze_bcm_layer(*layer);
    total.total_units += r.total_units;
    total.poor_units += r.poor_units;
    total.mean_effective_rank +=
        r.mean_effective_rank * static_cast<double>(r.total_units);
    total.mean_decay_slope +=
        r.mean_decay_slope * static_cast<double>(r.total_units);
  }
  if (total.total_units) {
    const auto n = static_cast<double>(total.total_units);
    total.poor_fraction = static_cast<double>(total.poor_units) / n;
    total.mean_effective_rank /= n;
    total.mean_decay_slope /= n;
  }
  return total;
}

std::vector<float> mean_bcm_curve(nn::Sequential& model) {
  auto set = core::BcmLayerSet::collect(model);
  std::vector<double> acc;
  std::size_t layers = 0;
  for (auto* layer : set.convs()) {
    const auto curve = core::mean_bcm_decay_curve(*layer);
    if (acc.empty()) acc.assign(curve.size(), 0.0);
    for (std::size_t k = 0; k < curve.size(); ++k) acc[k] += curve[k];
    ++layers;
  }
  std::vector<float> out(acc.size(), 0.0F);
  for (std::size_t k = 0; k < acc.size(); ++k)
    out[k] = static_cast<float>(acc[k] / static_cast<double>(layers));
  return out;
}

void panel(std::size_t unit) {
  std::printf("\n--- %zux%zu units ---\n", unit, unit);
  double dense_acc = 0.0, bcm_acc = 0.0;
  auto dense = train_model(models::ConvKind::kDense, unit, &dense_acc);
  auto bcm = train_model(models::ConvKind::kBcm, unit, &bcm_acc);

  numeric::Rng rng(unit);
  const auto gauss = core::gaussian_reference_sv(unit, rng);
  const auto orig = dense_unit_curve(*dense, unit);
  const auto bcm_curve = mean_bcm_curve(*bcm);

  benchutil::print_series("original conv (mean)", orig);
  benchutil::print_series("gaussian random", gauss);
  benchutil::print_series("BCM trained (mean)", bcm_curve);

  const auto bcm_report = aggregate_bcm_report(*bcm);
  std::printf("  trained accuracy: dense %.1f%%, BCM %.1f%%\n",
              dense_acc * 100.0, bcm_acc * 100.0);
  std::printf("  BCM blocks in poor rank-condition: %.1f%% of %zu "
              "(paper: >70%% across BS 8/16/32)\n",
              bcm_report.poor_fraction * 100.0, bcm_report.total_units);
  std::printf("  BCM mean log-decay slope: %.3f (more negative = more "
              "exponential)\n",
              bcm_report.mean_decay_slope);

  // Dense comparison: fraction of dense units in poor rank condition.
  std::size_t dense_total = 0, dense_poor = 0;
  dense->visit([&](nn::Layer& l) {
    auto* conv = dynamic_cast<nn::Conv2d*>(&l);
    if (!conv) return;
    const auto r = core::analyze_dense_conv(*conv, unit);
    dense_total += r.total_units;
    dense_poor += r.poor_units;
  });
  if (dense_total)
    std::printf("  dense conv units in poor rank-condition: %.1f%% of %zu "
                "(paper: ~2%%)\n",
                100.0 * static_cast<double>(dense_poor) /
                    static_cast<double>(dense_total),
                dense_total);
}

}  // namespace

// The short synthetic-task trainings above show the *onset* of the rank
// pathology; the paper's >70% poor-rank statistic belongs to networks
// trained to convergence (hundreds of CIFAR epochs). The converged-regime
// statistical model (core/rank_analysis.hpp) synthesizes blocks with the
// spectral statistics of that regime; this panel reproduces the Fig. 2
// numbers from it.
void converged_regime_panel() {
  std::printf("\n--- converged-regime statistical model (tau = spectral "
              "decay constant) ---\n");
  numeric::Rng rng(7);
  std::printf("%8s %8s %16s %16s\n", "BS", "tau", "BCM poor(%)",
              "Gaussian poor(%)");
  for (std::size_t bs : {8u, 16u, 32u}) {
    const double p = core::synth_bcm_poor_fraction(bs, 1.0, 500, rng);
    // Gaussian random matrices of the same size never trip the criterion.
    std::size_t gpoor = 0;
    for (int s = 0; s < 200; ++s)
      if (numeric::poor_rank_condition(core::gaussian_reference_sv(bs, rng)))
        ++gpoor;
    std::printf("%8zu %8.1f %15.1f%% %15.1f%%\n", bs, 1.0, p * 100.0,
                gpoor / 2.0);
  }
  std::printf("\nmean decay curves at BS=16, tau=1.0:\n");
  const auto bcm = core::synth_decay_curve(16, 1.0, 400, false, rng);
  benchutil::print_series("BCM (converged model)", bcm);
  numeric::Rng rng2(8);
  benchutil::print_series("gaussian random",
                          core::gaussian_reference_sv(16, rng2));
  std::printf("paper (VGG-16/Cifar-10, trained): >70%% of BCMs poor across "
              "BS 8/16/32; ~2%% for original conv units\n");
}

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Fig. 2",
                    "singular-value decay: original conv vs Gaussian vs "
                    "trained BCM");
  panel(16);
  panel(32);
  converged_regime_panel();
  benchutil::note(
      "expected shape: Gaussian and original conv decay near-linearly; BCM "
      "blocks decay exponentially. Short proxy training shows the onset "
      "(steeper BCM slope); the converged-regime model reproduces the "
      "paper's poor-rank percentages (see DESIGN.md substitutions)");
  obs::dump_outputs(obs_opts);
  return 0;
}

// Reproduces Fig. 9b: VGG-16 on Cifar-10 — accuracy vs parameter
// reduction for traditional BCM (BS=8/16/32) against RP-BCM (hadaBCM at
// BS=8, then BCM-wise pruning). Scaled proxy on the synthetic Cifar-10
// stand-in; see DESIGN.md substitutions.

#include "obs/cli.hpp"
#include "tradeoff_common.hpp"

int main(int argc, char** argv) {
  const rpbcm::obs::CliOptions obs_opts = rpbcm::obs::parse_cli(argc, argv);
  rpbcm::benchutil::TradeoffSetup s;
  s.figure = "Fig. 9b";
  s.network = "VGG-16 proxy / synthetic Cifar-10 stand-in (beta ~ paper's 92%)";
  s.deep = false;
  s.classes = 10;
  s.beta_drop = 0.05;
  s.seed = 51;
  rpbcm::benchutil::run_tradeoff(s);
  rpbcm::obs::dump_outputs(obs_opts);
  return 0;
}

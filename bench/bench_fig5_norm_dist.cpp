// Reproduces Fig. 5: the norm distribution of pruning units. U_bcm (one
// BCM's BS values) has a wider, lower-reaching norm distribution than
// U_cnn (a dense BS x BS unit with BS^2 values) — the law-of-large-numbers
// argument of Section III-B that makes the norm criterion effective for
// BCM-wise pruning. The paper shows first/last layers of ResNet-18 and
// ResNet-50; we train the scaled ResNet proxy twice (dense and hadaBCM).

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "core/pruning.hpp"
#include "models/model_zoo.hpp"
#include "numeric/kde.hpp"
#include "numeric/stats.hpp"
#include "nn/trainer.hpp"

using namespace rpbcm;

namespace {

std::unique_ptr<nn::Sequential> train(models::ConvKind kind, std::size_t bs) {
  models::ScaledNetConfig cfg;
  cfg.base_width = 16;
  cfg.kind = kind;
  cfg.block_size = bs;
  auto model = models::make_scaled_resnet(cfg);
  nn::SyntheticSpec dspec;
  dspec.classes = 8;
  dspec.train = 1024;
  dspec.test = 256;
  dspec.seed = 37;
  const nn::SyntheticImageDataset data(dspec);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.steps_per_epoch = 20;
  tc.batch = 16;
  tc.seed = 47;
  nn::Trainer trainer(*model, data, tc);
  trainer.train();
  return model;
}

// Normalized unit norms of a layer (each norm divided by the layer mean so
// distributions are comparable across layers, as in Fig. 5's shared axes).
std::vector<float> normalize(std::vector<float> norms) {
  double mean = 0.0;
  for (float n : norms) mean += n;
  mean /= static_cast<double>(norms.size());
  for (auto& n : norms) n = static_cast<float>(n / mean);
  return norms;
}

std::vector<float> bcm_unit_norms(core::BcmConv2d& layer) {
  std::vector<float> out;
  for (double n : layer.block_norms()) out.push_back(static_cast<float>(n));
  return normalize(std::move(out));
}

std::vector<float> dense_unit_norms(nn::Conv2d& layer, std::size_t unit) {
  const auto& s = layer.spec();
  std::vector<float> out;
  const auto& w = layer.weight().value;
  for (std::size_t kh = 0; kh < s.kernel; ++kh)
    for (std::size_t kw = 0; kw < s.kernel; ++kw)
      for (std::size_t bi = 0; bi < s.in_channels / unit; ++bi)
        for (std::size_t bo = 0; bo < s.out_channels / unit; ++bo) {
          double sq = 0.0;
          for (std::size_t i = 0; i < unit; ++i)
            for (std::size_t j = 0; j < unit; ++j) {
              const float v = w.at(bo * unit + i, bi * unit + j, kh, kw);
              sq += static_cast<double>(v) * v;
            }
          out.push_back(static_cast<float>(std::sqrt(sq)));
        }
  return normalize(std::move(out));
}

void report(const char* label, std::span<const float> norms) {
  const numeric::GaussianKde kde(norms);
  std::printf("  %-22s units %5zu  std %.3f  min %.3f  max %.3f  "
              "KDE bandwidth %.3f\n",
              label, norms.size(), numeric::stddev(norms),
              numeric::min_value(norms), numeric::max_value(norms),
              kde.bandwidth());
  // Coarse KDE curve over [0, 2.5] x mean.
  const auto grid = kde.evaluate_grid(0.0, 2.5, 24);
  std::vector<float> curve;
  double peak = 1e-12;
  for (const auto& [x, f] : grid) peak = std::max(peak, f);
  for (const auto& [x, f] : grid)
    curve.push_back(static_cast<float>(f / peak));
  std::printf("  %-22s |%s| density over [0, 2.5]*mean\n", "",
              benchutil::sparkline(curve).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Fig. 5",
                    "norm distribution of pruning units: U_bcm vs U_cnn");
  const std::size_t bs = 8;
  auto dense = train(models::ConvKind::kDense, bs);
  auto bcm = train(models::ConvKind::kHadaBcm, bs);

  auto bcm_set = core::BcmLayerSet::collect(*bcm);
  std::vector<nn::Conv2d*> dense_convs;
  dense->visit([&](nn::Layer& l) {
    if (auto* c = dynamic_cast<nn::Conv2d*>(&l)) {
      const auto& s = c->spec();
      if (s.in_channels % bs == 0 && s.out_channels % bs == 0)
        dense_convs.push_back(c);
    }
  });

  struct Pick {
    const char* tag;
    std::size_t idx;
  };
  const Pick picks[] = {{"first compressible", 0},
                        {"last compressible", ~std::size_t{0}}};
  for (const auto& p : picks) {
    std::printf("\n--- %s layer ---\n", p.tag);
    const std::size_t bi =
        p.idx == ~std::size_t{0} ? bcm_set.convs().size() - 1 : p.idx;
    const std::size_t di =
        p.idx == ~std::size_t{0} ? dense_convs.size() - 1 : p.idx;
    const auto u_bcm = bcm_unit_norms(*bcm_set.convs()[bi]);
    const auto u_cnn = dense_unit_norms(*dense_convs[di], bs);
    report("U_cnn (dense units)", u_cnn);
    report("U_bcm (BCM blocks)", u_bcm);
    std::printf("  deviation ratio U_bcm/U_cnn: %.2fx   min-norm ratio: "
                "%.2fx\n",
                numeric::stddev(u_bcm) / std::max(1e-9, numeric::stddev(u_cnn)),
                numeric::min_value(u_cnn) /
                    std::max(1e-9, numeric::min_value(u_bcm)));
  }
  std::printf("\n");
  benchutil::note(
      "expected shape (paper Fig. 5): U_bcm has larger deviation and its "
      "minimum norm sits closer to zero — both requirements of norm-based "
      "pruning [20]");
  obs::dump_outputs(obs_opts);
  return 0;
}

// Reproduces Fig. 9c: VGG-19 on Cifar-100 — accuracy vs parameter
// reduction. The synthetic stand-in uses 20 classes (a 100-class synthetic
// task is not learnable by the scaled proxy in bench time; the comparison
// between compression methods is unaffected — all series share the task).

#include "obs/cli.hpp"
#include "tradeoff_common.hpp"

int main(int argc, char** argv) {
  const rpbcm::obs::CliOptions obs_opts = rpbcm::obs::parse_cli(argc, argv);
  rpbcm::benchutil::TradeoffSetup s;
  s.figure = "Fig. 9c";
  s.network =
      "VGG-19 proxy / synthetic Cifar-100 stand-in (beta ~ paper's 71%)";
  s.deep = true;
  s.classes = 20;
  s.beta_drop = 0.07;
  s.seed = 61;
  rpbcm::benchutil::run_tradeoff(s);
  rpbcm::obs::dump_outputs(obs_opts);
  return 0;
}

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace rpbcm::benchutil {

/// Prints a horizontal rule sized to the standard bench table width.
inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Prints the bench banner: which paper artifact this binary regenerates.
inline void banner(const std::string& artifact, const std::string& detail) {
  rule('=');
  std::printf("%s — %s\n", artifact.c_str(), detail.c_str());
  std::printf("RP-BCM reproduction (Song et al., DATE 2023)\n");
  rule('=');
}

/// ASCII sparkline of a [0,1]-normalized series, for decay curves.
inline std::string sparkline(std::span<const float> values) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (float v : values) {
    // lround, not a truncating cast: casting rounds negative intermediates
    // toward zero, which would promote slightly-negative values a level up.
    const long idx =
        std::clamp(std::lround(static_cast<double>(v) * 7.0), 0L, 7L);
    out += levels[idx];
  }
  return out;
}

/// Prints one normalized decay series with a label.
inline void print_series(const std::string& label,
                         std::span<const float> values) {
  std::printf("  %-28s |%s|  ", label.c_str(),
              sparkline(values).c_str());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i >= 8 && values.size() > 12) {  // keep rows readable
      std::printf("...");
      break;
    }
    std::printf("%s%.3f", i ? " " : "", values[i]);
  }
  std::printf("\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

}  // namespace rpbcm::benchutil

// Serving throughput: single-request serial policy vs micro-batched
// pipelined policy on the same model and the same pool thread budget.
//
// Both policies face the same saturated offered load: every request is
// submitted up front, then the run drains. The serial policy dispatches
// micro-batches of exactly 1 — every request pays the full per-dispatch
// cost (two stage handoffs through the channel, a future completion, pool
// wakeups on a tiny parallel range). The batched policy coalesces up to 8
// requests per dispatch and overlaps batch N+1's rFFT with batch N's
// eMAC+IFFT through the capacity-1 stage channel. Amortizing the fixed
// dispatch cost over the batch and keeping both pipeline stages busy is
// where the throughput multiple comes from.
//
//   --threads=N   pool threads for BOTH policies      [default 4]
//   --requests=N  requests per measured run           [default 4000]
//   --json[=PATH] write a {"serve_throughput": [...]} baseline
//                 (default PATH: BENCH_serve.json) for perf_gate
//                 --section=serve_throughput
//
// Shared obs flags (--metrics-out=...) are stripped by obs::parse_cli.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/parallel.hpp"
#include "bench_util.hpp"
#include "core/bcm_linear.hpp"
#include "numeric/random.hpp"
#include "obs/cli.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "serve/engine.hpp"
#include "serve/model.hpp"
#include "tensor/init.hpp"

using namespace rpbcm;

namespace {

constexpr std::size_t kIn = 64;
constexpr std::size_t kOut = 64;
constexpr std::size_t kBs = 8;
constexpr std::size_t kBatch = 8;

std::vector<tensor::Tensor> make_inputs(std::size_t count) {
  numeric::Rng rng(7);
  std::vector<tensor::Tensor> inputs(count, tensor::Tensor({kIn}));
  for (auto& t : inputs) tensor::fill_gaussian(t, rng);
  return inputs;
}

serve::EngineOptions policy(std::size_t max_batch, std::size_t queue_depth) {
  serve::EngineOptions o;
  o.batcher.max_batch_size = max_batch;
  // Under saturation the queue is never starved, so batches fill without
  // lingering; 0 also makes the serial policy dispatch instantly.
  o.batcher.max_linger = std::chrono::microseconds(0);
  o.batcher.max_queue_depth = queue_depth;
  return o;
}

// Saturated drain: submit `requests` up front, then wait for all of them.
// Returns the drain wall time in milliseconds; every request must be kOk.
double drain_ms(serve::Engine& engine,
                const std::vector<tensor::Tensor>& inputs,
                std::size_t requests) {
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    serve::Request req;
    req.input = inputs[i % inputs.size()];
    futures.push_back(engine.submit(std::move(req)));
  }
  std::size_t ok = 0;
  for (auto& f : futures)
    if (f.get().status == serve::Status::kOk) ++ok;
  const auto t1 = std::chrono::steady_clock::now();
  if (ok != requests) {
    RPBCM_LOG_ERROR("bench_serve", "dropped requests during measurement");
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Best-of-`rounds` per-request wall milliseconds of a dispatch policy
// under saturation. The minimum is the noise-robust estimator here for the
// same reason bench_micro_kernels uses it: scheduling and cache pollution
// only ever add time.
double run_policy(core::BcmLinear& layer, std::size_t max_batch,
                  std::size_t requests, int rounds) {
  auto model = serve::make_staged(layer);
  serve::Engine engine(*model, policy(max_batch, requests + kBatch));
  const auto inputs = make_inputs(64);
  drain_ms(engine, inputs, requests / 4 + 1);  // warm-up: caches, pool
  double best = drain_ms(engine, inputs, requests);
  for (int r = 1; r < rounds; ++r)
    best = std::min(best, drain_ms(engine, inputs, requests));
  engine.stop(/*drain=*/true);
  return best / static_cast<double>(requests);
}

struct ThroughputRow {
  std::string name;
  double single_ms = 0.0;   // per request, serial policy
  double batched_ms = 0.0;  // per request, batched policy
};

void write_json(const std::string& path, std::size_t threads,
                const std::vector<ThroughputRow>& rows) {
  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"serve_throughput\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    os << "    {\"name\": ";
    obs::write_json_string(os, r.name);
    os << ", \"single_request_ms\": ";
    obs::write_json_number(os, r.single_ms);
    os << ", \"batched_ms\": ";
    obs::write_json_number(os, r.batched_ms);
    os << ", \"speedup\": ";
    obs::write_json_number(os,
                           r.batched_ms > 0.0 ? r.single_ms / r.batched_ms
                                              : 0.0);
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  std::size_t threads = 4;
  std::size_t requests = 4000;
  bool want_json = false;
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + 11, nullptr, 10));
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr, "bench_serve_throughput: unknown flag %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (threads == 0 || requests == 0) {
    std::fprintf(stderr, "bench_serve_throughput: --threads/--requests > 0\n");
    return 2;
  }
  base::set_num_threads(threads);

  benchutil::banner("Serving throughput",
                    "single-request vs micro-batched pipelined engine");
  numeric::Rng rng(42);
  core::BcmLinear layer(kIn, kOut, kBs, /*hadamard=*/true, rng);

  constexpr int kRounds = 5;
  ThroughputRow row;
  row.name = "bcm_linear_64_b8";
  row.single_ms = run_policy(layer, /*max_batch=*/1, requests, kRounds);
  row.batched_ms = run_policy(layer, kBatch, requests, kRounds);
  const double speedup =
      row.batched_ms > 0.0 ? row.single_ms / row.batched_ms : 0.0;

  std::printf("%-24s %16s %16s %10s\n", "model", "single(ms/req)",
              "batched(ms/req)", "speedup");
  benchutil::rule();
  std::printf("%-24s %16.4f %16.4f %9.2fx\n", row.name.c_str(), row.single_ms,
              row.batched_ms, speedup);
  benchutil::rule();
  std::printf("  %zu pool thread(s), batch cap %zu, best of %d rounds, "
              "%zu requests per run\n",
              threads, kBatch, kRounds, requests);
  benchutil::note(
      "batched >= 2x single is the deployment target at batch 8 on 4 "
      "threads; the win comes from amortized dispatch overhead plus the "
      "double-buffered FFT/eMAC overlap");

  if (want_json) write_json(json_path, threads, {row});
  obs::dump_outputs(obs_opts);
  return 0;
}

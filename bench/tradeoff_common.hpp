#pragma once

// Shared harness for Figs. 9b and 9c: accuracy vs parameter-reduction
// trade-off of traditional BCM compression (BS = 8/16/32) against RP-BCM
// (hadaBCM at BS=8, then BCM-wise pruning with growing alpha). Trains the
// scaled VGG proxies on the synthetic dataset stand-ins (DESIGN.md).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/pruning.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

namespace rpbcm::benchutil {

struct TradeoffSetup {
  const char* figure;        // "Fig. 9b" / "Fig. 9c"
  const char* network;       // proxy description
  bool deep = false;         // VGG-19 proxy?
  std::size_t classes = 10;
  double beta = 0.0;         // target accuracy for Algorithm 1 (absolute)
  double beta_drop = 0.05;   // if beta == 0: beta = trained_acc - drop
  std::uint64_t seed = 51;
};

struct Point {
  double param_reduction;
  double accuracy;
};

inline nn::SyntheticSpec tradeoff_dataset(const TradeoffSetup& s) {
  nn::SyntheticSpec d;
  d.classes = s.classes;
  d.train = 1024;
  d.test = 512;
  d.noise = 1.1F;        // hard stand-in: keeps every variant off the
  d.phase_jitter = 1.3F; // ceiling so compression differences are visible
  d.seed = s.seed;
  return d;
}

inline nn::TrainConfig tradeoff_train_cfg(std::uint64_t seed) {
  nn::TrainConfig tc;
  tc.epochs = 10;  // the two-factor hadaBCM parameterization needs more
                   // steps to converge than plain BCM; train all series to
                   // (near) convergence as the paper does
  tc.steps_per_epoch = 20;
  tc.batch = 16;
  tc.lr = 0.05F;
  tc.seed = seed;
  return tc;
}

inline void run_tradeoff(const TradeoffSetup& setup) {
  banner(setup.figure, std::string("accuracy vs parameter reduction, ") +
                           setup.network);
  const nn::SyntheticImageDataset data(tradeoff_dataset(setup));

  // Dense baseline: reference accuracy and parameter count.
  models::ScaledNetConfig base;
  base.base_width = 32;
  base.classes = setup.classes;
  std::size_t dense_params = 0;
  double dense_acc = 0.0;
  {
    auto cfg = base;
    cfg.kind = models::ConvKind::kDense;
    auto model = models::make_scaled_vgg(cfg, setup.deep);
    dense_params = model->deployed_param_count();
    nn::Trainer trainer(*model, data, tradeoff_train_cfg(setup.seed + 1));
    trainer.train();
    dense_acc = trainer.evaluate();
  }
  std::printf("dense baseline: %.1f%% accuracy, %zu deployed params\n\n",
              dense_acc * 100.0, dense_params);

  auto reduction = [&](std::size_t deployed) {
    return 1.0 - static_cast<double>(deployed) /
                     static_cast<double>(dense_params);
  };

  std::printf("%-34s %10s %12s\n", "series / point", "params v(%)",
              "accuracy(%)");
  rule();

  // Traditional BCM: the only compression knob is BS in {8, 16, 32}.
  for (std::size_t bs : {8u, 16u, 32u}) {
    auto cfg = base;
    cfg.kind = models::ConvKind::kBcm;
    cfg.block_size = bs;
    auto model = models::make_scaled_vgg(cfg, setup.deep);
    nn::Trainer trainer(*model, data, tradeoff_train_cfg(setup.seed + bs));
    trainer.train();
    const double acc = trainer.evaluate();
    std::printf("%-34s %10.1f %12.1f\n",
                (std::string("traditional BCM, BS=") + std::to_string(bs))
                    .c_str(),
                reduction(model->deployed_param_count()) * 100.0,
                acc * 100.0);
  }

  // Ours *1: hadaBCM at BS=8 (same deployed size as trad BS=8).
  auto cfg = base;
  cfg.kind = models::ConvKind::kHadaBcm;
  cfg.block_size = 8;
  auto model = models::make_scaled_vgg(cfg, setup.deep);
  nn::Trainer trainer(*model, data, tradeoff_train_cfg(setup.seed + 77));
  trainer.train();
  const double hada_acc = trainer.evaluate();
  std::printf("%-34s %10.1f %12.1f\n", "ours *1: hadaBCM, BS=8",
              reduction(model->deployed_param_count()) * 100.0,
              hada_acc * 100.0);

  // Ours *2: BCM-wise pruning sweep (Algorithm 1 trace). We log every
  // round, then report the break-down point for target beta.
  const double beta =
      setup.beta > 0.0 ? setup.beta : hada_acc - setup.beta_drop;
  auto set = core::BcmLayerSet::collect(*model);
  const auto initial_norms = set.norm_list();
  double best_alpha = 0.0, best_red = 0.0, best_acc = hada_acc;
  for (float alpha = 0.25F; alpha <= 0.90F; alpha += 0.125F) {
    // Threshold from the *initial* norm list, as Algorithm 1 specifies.
    auto norms_sorted = initial_norms;
    std::nth_element(
        norms_sorted.begin(),
        norms_sorted.begin() +
            static_cast<long>(static_cast<double>(norms_sorted.size()) *
                              alpha) -
            1,
        norms_sorted.end());
    const double threshold =
        norms_sorted[static_cast<std::size_t>(
                         static_cast<double>(norms_sorted.size()) * alpha) -
                     1];
    set.prune_below(initial_norms, threshold);
    const double acc = trainer.fine_tune(2, 0.01F);
    const double red = reduction(model->deployed_param_count());
    const bool meets = acc >= beta;
    std::printf("%-34s %10.1f %12.1f%s\n",
                (std::string("ours *2: pruned, alpha=") +
                 std::to_string(alpha).substr(0, 5))
                    .c_str(),
                red * 100.0, acc * 100.0, meets ? "" : "   [below beta]");
    if (meets) {
      best_alpha = alpha;
      best_red = red;
      best_acc = acc;
    }
  }
  rule();
  std::printf("break-down point (beta = %.1f%%): alpha = %.3f, params "
              "-%.1f%%, accuracy %.1f%%\n",
              beta * 100.0, best_alpha, best_red * 100.0, best_acc * 100.0);
  note("expected shape: at equal parameter reduction, ours (*1/*2) sits "
       "above traditional BCM; larger BS degrades traditional BCM sharply");
}

}  // namespace rpbcm::benchutil

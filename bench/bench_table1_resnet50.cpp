// Reproduces Table I: compression comparison on ResNet-50/ImageNet.
// FLOPs and parameter reductions are exact functions of the full-size
// ResNet-50 layer shapes and the RP-BCM configuration (BS, alpha), so they
// are regenerated analytically from the descriptor. Accuracy deltas come
// from a scaled ResNet proxy trained on the synthetic ImageNet stand-in
// (see DESIGN.md substitutions): the paper's published deltas are printed
// alongside for comparison.

#include <cstdio>

#include "bench_util.hpp"
#include "obs/cli.hpp"
#include "core/compression_stats.hpp"
#include "core/pruning.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace rpbcm;

namespace {

struct ProxyResult {
  double baseline_acc;
  double compressed_acc;
};

// Trains the scaled ResNet proxy dense and with RP-BCM at (bs, alpha) and
// returns the two accuracies on the synthetic stand-in dataset.
ProxyResult accuracy_proxy(std::size_t bs, float alpha) {
  // A deliberately hard stand-in task (many classes, heavy noise and phase
  // jitter) so the compression/accuracy trade-off is visible — on an easy
  // task every variant saturates and the deltas degenerate to zero.
  nn::SyntheticSpec dspec;
  dspec.classes = 16;
  dspec.train = 768;
  dspec.test = 256;
  dspec.noise = 1.1F;
  dspec.phase_jitter = 1.3F;
  dspec.seed = 17;
  const nn::SyntheticImageDataset data(dspec);

  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.steps_per_epoch = 24;
  tc.batch = 16;
  tc.lr = 0.05F;
  tc.seed = 31;

  models::ScaledNetConfig base;
  base.classes = 16;
  base.base_width = 16;
  base.block_size = bs;

  ProxyResult out{};
  {
    auto cfg = base;
    cfg.kind = models::ConvKind::kDense;
    auto model = models::make_scaled_resnet(cfg);
    // Match the compressed pipeline's total training budget (initial
    // training + the incremental-pruning fine-tune epochs), otherwise the
    // comparison hands the compressed model extra optimization for free.
    nn::Trainer trainer(*model, data, tc);
    trainer.train();
    const std::size_t ft_rounds =
        static_cast<std::size_t>(alpha / 0.2F);
    trainer.fine_tune(2 * ft_rounds, 0.02F);
    out.baseline_acc = trainer.fine_tune(5, 0.01F);
  }
  {
    auto cfg = base;
    cfg.kind = models::ConvKind::kHadaBcm;
    auto model = models::make_scaled_resnet(cfg);
    nn::Trainer trainer(*model, data, tc);
    trainer.train();
    // Prune incrementally with fine-tuning between steps, as Algorithm 1
    // does — one-shot pruning at high alpha wrecks accuracy unfairly.
    auto set = core::BcmLayerSet::collect(*model);
    for (float a = 0.2F; a < alpha; a += 0.2F) {
      core::BcmPruner::apply_ratio(set, a);
      trainer.fine_tune(2, 0.02F);
    }
    core::BcmPruner::apply_ratio(set, alpha);
    out.compressed_acc = trainer.fine_tune(5, 0.01F);
  }
  return out;
}

void published_row(const char* method, const char* top1, const char* d1,
                   const char* top5, const char* d5, const char* flops,
                   const char* params) {
  std::printf("%-24s %8s %7s %8s %7s %10s %11s\n", method, top1, d1, top5,
              d5, flops, params);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::parse_cli(argc, argv);
  benchutil::banner("Table I", "compression comparison on ResNet-50/ImageNet");

  const auto net = models::resnet50_imagenet_shape();
  std::printf("ResNet-50 descriptor: %.2fM params, %.2f GFLOPs (dense)\n\n",
              static_cast<double>(net.dense_params()) / 1e6,
              static_cast<double>(net.dense_flops()) / 1e9);

  std::printf("%-24s %8s %7s %8s %7s %10s %11s\n", "Method", "Top-1", "d(%)",
              "Top-5", "d(%)", "FLOPs.(%)", "Params.(%)");
  benchutil::rule('-', 90);
  published_row("Baseline", "76.15", "-", "92.87", "-", "-", "-");
  published_row("BPPS [22]", "70.58", "-5.57", "90.00", "-2.87", "75.80",
                "68.55");
  published_row("GAL [23]", "71.80", "-4.35", "90.82", "-2.05", "55.01",
                "24.27");
  published_row("HRank [9]", "71.98", "-4.17", "91.01", "-1.86", "62.10",
                "46.00");
  published_row("ThiNet [24]", "72.04", "-4.11", "90.67", "-2.20", "36.79",
                "33.72");
  published_row("TRP [11]", "72.69", "-3.46", "91.41", "-1.46", "56.50",
                "N/A");
  published_row("CHIP [25]", "73.30", "-2.85", "91.48", "-1.39", "76.70",
                "68.60");
  published_row("FPGM [26]", "74.83", "-1.32", "92.32", "-0.55", "53.50",
                "N/A");
  benchutil::rule('-', 90);

  struct OurPoint {
    std::size_t bs;
    double alpha;
    const char* paper_flops;
    const char* paper_params;
    const char* paper_top1_delta;
  };
  const OurPoint points[] = {
      {8, 0.5, "77.33", "92.40", "-4.16"},
      {4, 0.7, "68.88", "88.79", "-3.02"},
  };

  for (const auto& p : points) {
    core::BcmCompressionConfig cfg;
    cfg.block_size = p.bs;
    cfg.alpha = p.alpha;
    cfg.compress_fc = true;
    const auto rep = core::analyze_compression(net, cfg);
    const auto proxy = accuracy_proxy(p.bs, static_cast<float>(p.alpha));
    std::printf(
        "Ours (BS=%zu, a=%.1f)      measured: FLOPs -%5.2f%% (paper %s)  "
        "Params -%5.2f%% (paper %s)\n",
        p.bs, p.alpha, rep.flops_reduction() * 100.0, p.paper_flops,
        rep.param_reduction() * 100.0, p.paper_params);
    std::printf(
        "                          proxy acc: baseline %.1f%% -> RP-BCM "
        "%.1f%% (delta %+.1f pts; paper delta %s on ImageNet)\n",
        proxy.baseline_acc * 100.0, proxy.compressed_acc * 100.0,
        (proxy.compressed_acc - proxy.baseline_acc) * 100.0,
        p.paper_top1_delta);
    std::printf(
        "                          compressed params: %.2fM, compressed "
        "FLOPs: %.2fG, skip index: %.1f KB\n",
        static_cast<double>(rep.compressed_params) / 1e6,
        static_cast<double>(rep.compressed_flops) / 1e9,
        static_cast<double>(rep.skip_index_bits) / 8.0 / 1024.0);
  }
  benchutil::rule('-', 90);
  benchutil::note(
      "shape check: ours has by far the largest parameter reduction of any "
      "method in the table (>88%), with FLOPs reduction in the 70-80% band "
      "at BS=8");
  obs::dump_outputs(obs_opts);
  return 0;
}

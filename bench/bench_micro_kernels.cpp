// Micro-benchmarks (google-benchmark) of the computational kernels behind
// the paper's complexity claims: O(n^2) direct circulant matvec vs
// O(n log n) FFT path, the FFT itself, the fixed-point PE datapath, and
// dense vs BCM-compressed convolution forward passes.

// Observability:  --trace-out= / --metrics-out= are stripped before
// google-benchmark sees argv; kernel timings recorded by the harness are
// exported through the shared obs registry.

#include <benchmark/benchmark.h>

#include "core/bcm_conv.hpp"
#include "core/circulant.hpp"
#include "hw/emac_pe.hpp"
#include "hw/fft_pe.hpp"
#include "nn/conv2d.hpp"
#include "numeric/fft.hpp"
#include "numeric/random.hpp"
#include "obs/cli.hpp"
#include "obs/macros.hpp"
#include "tensor/init.hpp"

using namespace rpbcm;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  numeric::Rng rng(seed);
  return rng.gaussian_vector(n);
}

void BM_FftComplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const numeric::TwiddleRom rom(n);
  std::vector<numeric::cfloat> data(n);
  numeric::Rng rng(n);
  for (auto& v : data) v = {rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    auto copy = data;
    numeric::fft_inplace(std::span<numeric::cfloat>(copy), rom, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftComplex)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(256);

void BM_CirculantMatvecDirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = core::Circulant::from_first_column(random_vec(n, 1));
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    auto y = c.matvec_direct(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CirculantMatvecDirect)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CirculantMatvecFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = core::Circulant::from_first_column(random_vec(n, 1));
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    auto y = c.matvec_fft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CirculantMatvecFft)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_FixedPointFftPe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const hw::FftPe pe(n);
  std::vector<hw::Fix16> x(n);
  numeric::Rng rng(3);
  for (auto& v : x) v = hw::Fix16::from_float(rng.uniform(-1, 1));
  for (auto _ : state) {
    auto spec = pe.forward_real(x);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FixedPointFftPe)->Arg(8)->Arg(16)->Arg(32);

void BM_EmacHalf(benchmark::State& state) {
  const auto bs = static_cast<std::size_t>(state.range(0));
  const std::size_t half = bs / 2 + 1;
  std::vector<hw::CFix16> w(half), x(half), acc(half);
  numeric::Rng rng(4);
  for (std::size_t k = 0; k < half; ++k) {
    w[k] = hw::CFix16::from_floats(rng.uniform(-1, 1), rng.uniform(-1, 1));
    x[k] = hw::CFix16::from_floats(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  for (auto _ : state) {
    hw::EmacPe::emac_half(w, x, acc);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_EmacHalf)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

nn::ConvSpec conv_spec(std::size_t c) {
  nn::ConvSpec s;
  s.in_channels = c;
  s.out_channels = c;
  s.kernel = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

void BM_DenseConvForward(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(5);
  nn::Conv2d conv(conv_spec(c), rng);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DenseConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_BcmConvForward(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(6);
  core::BcmConv2d conv(conv_spec(c), 8,
                       core::BcmParameterization::kHadamard, rng);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BcmConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_BcmConvForwardPruned(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(7);
  core::BcmConv2d conv(conv_spec(c), 8,
                       core::BcmParameterization::kHadamard, rng);
  // Prune half the blocks: the software skip path mirrors the PE's.
  for (std::size_t b = 0; b < conv.layout().total_blocks(); b += 2)
    conv.prune_block(b);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BcmConvForwardPruned)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  obs::CliOptions obs_opts = obs::parse_cli(argc, argv);  // strips obs flags
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    RPBCM_OBS_TRACE_SCOPE("bench", "micro_kernels");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  obs::dump_outputs(obs_opts);
  return 0;
}

// Micro-benchmarks (google-benchmark) of the computational kernels behind
// the paper's complexity claims: O(n^2) direct circulant matvec vs
// O(n log n) FFT path, the FFT itself, the fixed-point PE datapath, and
// dense vs BCM-compressed convolution forward passes.

// Observability:  --trace-out= / --metrics-out= are stripped before
// google-benchmark sees argv; kernel timings recorded by the harness are
// exported through the shared obs registry.
//
// Parallel runtime: --threads=N sets base::set_num_threads before any
// benchmark runs; --kernels-json[=PATH] additionally writes a
// serial-vs-threaded baseline (default PATH: BENCH_kernels.json) so the
// runtime's speedup can be tracked across commits.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "base/parallel.hpp"
#include "core/bcm_conv.hpp"
#include "core/circulant.hpp"
#include "hw/emac_pe.hpp"
#include "hw/fft_pe.hpp"
#include "nn/conv2d.hpp"
#include "numeric/aligned.hpp"
#include "numeric/emac.hpp"
#include "numeric/fft.hpp"
#include "numeric/random.hpp"
#include "numeric/rfft.hpp"
#include "obs/cli.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/macros.hpp"
#include "tensor/init.hpp"

using namespace rpbcm;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  numeric::Rng rng(seed);
  return rng.gaussian_vector(n);
}

void BM_FftComplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const numeric::TwiddleRom& rom = numeric::twiddle_rom(n);
  std::vector<numeric::cfloat> data(n);
  numeric::Rng rng(n);
  for (auto& v : data) v = {rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    auto copy = data;
    numeric::fft_inplace(std::span<numeric::cfloat>(copy), rom, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftComplex)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(256);

// Full complex FFT of a real signal (imaginary lane zero) — the transform
// the layers ran before the packed rfft path.
void BM_FftOfRealSignal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const numeric::TwiddleRom& rom = numeric::twiddle_rom(n);
  const auto x = random_vec(n, n);
  std::vector<numeric::cfloat> scratch(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) scratch[i] = {x[i], 0.0F};
    numeric::fft_inplace(std::span<numeric::cfloat>(scratch), rom, false);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftOfRealSignal)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(256);

// Packed real FFT of the same signal: an n/2-point complex FFT plus O(n)
// untangling. Compare against BM_FftOfRealSignal at the same size.
void BM_RfftReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const numeric::TwiddleRom& rom = numeric::twiddle_rom(n);
  const auto x = random_vec(n, n);
  const std::size_t hb = numeric::half_bins(n);
  std::vector<float> re(hb), im(hb);
  std::vector<numeric::cfloat> scratch(numeric::rfft_scratch_size(n));
  for (auto _ : state) {
    numeric::rfft_soa(x.data(), re.data(), im.data(), rom, scratch);
    benchmark::DoNotOptimize(re.data());
    benchmark::DoNotOptimize(im.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RfftReal)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(256);

void BM_CirculantMatvecDirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = core::Circulant::from_first_column(random_vec(n, 1));
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    auto y = c.matvec_direct(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CirculantMatvecDirect)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CirculantMatvecFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = core::Circulant::from_first_column(random_vec(n, 1));
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    auto y = c.matvec_fft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CirculantMatvecFft)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_FixedPointFftPe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const hw::FftPe pe(n);
  std::vector<hw::Fix16> x(n);
  numeric::Rng rng(3);
  for (auto& v : x) v = hw::Fix16::from_float(rng.uniform(-1, 1));
  for (auto _ : state) {
    auto spec = pe.forward_real(x);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FixedPointFftPe)->Arg(8)->Arg(16)->Arg(32);

void BM_EmacHalf(benchmark::State& state) {
  const auto bs = static_cast<std::size_t>(state.range(0));
  const std::size_t half = bs / 2 + 1;
  std::vector<hw::CFix16> w(half), x(half), acc(half);
  numeric::Rng rng(4);
  for (std::size_t k = 0; k < half; ++k) {
    w[k] = hw::CFix16::from_floats(rng.uniform(-1, 1), rng.uniform(-1, 1));
    x[k] = hw::CFix16::from_floats(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  for (auto _ : state) {
    hw::EmacPe::emac_half(w, x, acc);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_EmacHalf)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Float SoA eMAC inner loop of the BCM layers, accumulating over `bins`
// frequency bins per (weight, activation) spectrum pair.
void emac_bins(benchmark::State& state, std::size_t bins) {
  constexpr std::size_t kPairs = 64;  // in-blocks folded into one accumulator
  numeric::Rng rng(8);
  std::vector<float> wr(kPairs * bins), wi(kPairs * bins);
  std::vector<float> xr(kPairs * bins), xi(kPairs * bins);
  for (std::size_t i = 0; i < wr.size(); ++i) {
    wr[i] = rng.gaussian();
    wi[i] = rng.gaussian();
    xr[i] = rng.gaussian();
    xi[i] = rng.gaussian();
  }
  std::vector<float> ar(bins), ai(bins);
  for (auto _ : state) {
    std::fill(ar.begin(), ar.end(), 0.0F);
    std::fill(ai.begin(), ai.end(), 0.0F);
    for (std::size_t p = 0; p < kPairs; ++p) {
      const float* wrp = wr.data() + p * bins;
      const float* wip = wi.data() + p * bins;
      const float* xrp = xr.data() + p * bins;
      const float* xip = xi.data() + p * bins;
      for (std::size_t k = 0; k < bins; ++k) {
        ar[k] += wrp[k] * xrp[k] - wip[k] * xip[k];
        ai[k] += wrp[k] * xip[k] + wip[k] * xrp[k];
      }
    }
    benchmark::DoNotOptimize(ar.data());
    benchmark::DoNotOptimize(ai.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs * bins));
}

// Full-spectrum accumulation (BS bins) vs the half-spectrum path (BS/2+1
// bins) the layers now run — the eMAC side of the rfft speedup.
void BM_EmacBinsFull(benchmark::State& state) {
  emac_bins(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_EmacBinsFull)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EmacBinsHalf(benchmark::State& state) {
  emac_bins(state, static_cast<std::size_t>(state.range(0)) / 2 + 1);
}
BENCHMARK(BM_EmacBinsHalf)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

nn::ConvSpec conv_spec(std::size_t c) {
  nn::ConvSpec s;
  s.in_channels = c;
  s.out_channels = c;
  s.kernel = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

void BM_DenseConvForward(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(5);
  nn::Conv2d conv(conv_spec(c), rng);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DenseConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_BcmConvForward(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(6);
  core::BcmConv2d conv(conv_spec(c), 8,
                       core::BcmParameterization::kHadamard, rng);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BcmConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_BcmConvForwardPruned(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(7);
  core::BcmConv2d conv(conv_spec(c), 8,
                       core::BcmParameterization::kHadamard, rng);
  // Prune half the blocks: the software skip path mirrors the PE's.
  for (std::size_t b = 0; b < conv.layout().total_blocks(); b += 2)
    conv.prune_block(b);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BcmConvForwardPruned)->Arg(16)->Arg(32)->Arg(64);

// Wall-clock of `reps` invocations of fn(), in milliseconds.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Best single-invocation wall-clock over `reps` tries, in milliseconds.
// The minimum is the noise-robust estimator for before/after comparisons:
// scheduler preemption and cache pollution only ever add time, so the
// fastest rep is the closest observation of the kernel's true cost.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct KernelBaseline {
  std::string name;
  double serial_ms = 0.0;
  double threaded_ms = 0.0;
};

// Before/after row of the half-spectrum rewrite: the retired full-spectrum
// kernel vs the live rfft path, both at num_threads()==1.
struct HalfSpectrumRow {
  std::string name;
  double full_ms = 0.0;
  double half_ms = 0.0;
};

// Row of the emac_simd section: a baseline vs an optimized path plus an
// optional self-declared absolute speedup floor the perf gate enforces
// (written only when the host can realize the win — see below).
struct EmacSimdRow {
  std::string name;
  double baseline_ms = 0.0;
  double optimized_ms = 0.0;
  double min_speedup = 0.0;  // 0 = no floor
};

// Pre-rewrite reference: full-spectrum FFT–eMAC–IFFT conv forward exactly
// as the layers computed it before the packed-rfft path (serial, BS bins
// per block, complex FFT with a zero imaginary lane). Kept here only to
// measure the rewrite's speedup against an honest baseline.
tensor::Tensor full_spectrum_conv_forward(const core::BcmConv2d& conv,
                                          const tensor::Tensor& x) {
  const auto& lay = conv.layout();
  const auto& spec = conv.spec();
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t ho = spec.out_dim(h), wo = spec.out_dim(w);
  const std::size_t bs = lay.block_size;
  const std::size_t nbi = lay.in_blocks(), nbo = lay.out_blocks();
  const std::size_t k = spec.kernel, stride = spec.stride, pad = spec.pad;
  const numeric::TwiddleRom& rom = numeric::twiddle_rom(bs);
  const auto& skip = conv.skip_index();

  std::vector<numeric::cfloat> wspec(lay.total_blocks() * bs);
  for (std::size_t blk = 0; blk < lay.total_blocks(); ++blk) {
    if (skip[blk] == 0) continue;
    const auto def = conv.effective_defining(blk);
    for (std::size_t c = 0; c < bs; ++c) wspec[blk * bs + c] = {def[c], 0.0F};
    numeric::fft_inplace(
        std::span<numeric::cfloat>(wspec.data() + blk * bs, bs), rom, false);
  }

  std::vector<numeric::cfloat> xspec(n * h * w * nbi * bs);
  const float* xd = x.data();
  for (std::size_t p = 0; p < n * h * w; ++p) {
    const std::size_t ni = p / (h * w), ih = (p / w) % h, iw = p % w;
    for (std::size_t bi = 0; bi < nbi; ++bi) {
      numeric::cfloat* s = xspec.data() + (p * nbi + bi) * bs;
      for (std::size_t c = 0; c < bs; ++c)
        s[c] = {xd[((ni * spec.in_channels + bi * bs + c) * h + ih) * w + iw],
                0.0F};
      numeric::fft_inplace(std::span<numeric::cfloat>(s, bs), rom, false);
    }
  }

  tensor::Tensor y({n, spec.out_channels, ho, wo});
  float* yd = y.data();
  std::vector<numeric::cfloat> acc(nbo * bs);
  for (std::size_t q = 0; q < n * ho * wo; ++q) {
    const std::size_t ni = q / (ho * wo), oh = (q / wo) % ho, ow = q % wo;
    std::fill(acc.begin(), acc.end(), numeric::cfloat{0.0F, 0.0F});
    for (std::size_t kh = 0; kh < k; ++kh) {
      const long ih =
          static_cast<long>(oh * stride + kh) - static_cast<long>(pad);
      if (ih < 0 || ih >= static_cast<long>(h)) continue;
      for (std::size_t kw = 0; kw < k; ++kw) {
        const long iw =
            static_cast<long>(ow * stride + kw) - static_cast<long>(pad);
        if (iw < 0 || iw >= static_cast<long>(w)) continue;
        const std::size_t pix =
            (ni * h + static_cast<std::size_t>(ih)) * w +
            static_cast<std::size_t>(iw);
        for (std::size_t bi = 0; bi < nbi; ++bi) {
          const numeric::cfloat* xs = xspec.data() + (pix * nbi + bi) * bs;
          const std::size_t row = ((kh * k + kw) * nbi + bi) * nbo;
          for (std::size_t bo = 0; bo < nbo; ++bo) {
            const std::size_t blk = row + bo;
            if (skip[blk] == 0) continue;
            const numeric::cfloat* ws = wspec.data() + blk * bs;
            numeric::cfloat* a = acc.data() + bo * bs;
            for (std::size_t c = 0; c < bs; ++c) a[c] += ws[c] * xs[c];
          }
        }
      }
    }
    for (std::size_t bo = 0; bo < nbo; ++bo) {
      numeric::cfloat* a = acc.data() + bo * bs;
      numeric::fft_inplace(std::span<numeric::cfloat>(a, bs), rom, true);
      for (std::size_t c = 0; c < bs; ++c)
        yd[((ni * spec.out_channels + bo * bs + c) * ho + oh) * wo + ow] =
            a[c].real();
    }
  }
  return y;
}

// Pre-rewrite reference circulant matvec: two full complex FFTs of real
// signals, an n-bin product, one inverse FFT.
std::vector<float> full_spectrum_matvec(const core::Circulant& c,
                                        std::span<const float> x) {
  const std::size_t n = c.size();
  auto ws = numeric::fft_real(c.defining());
  auto xs = numeric::fft_real(x);
  for (std::size_t k = 0; k < n; ++k) xs[k] *= ws[k];
  numeric::fft_inplace(std::span<numeric::cfloat>(xs), true);
  std::vector<float> y(n);
  for (std::size_t k = 0; k < n; ++k) y[k] = xs[k].real();
  return y;
}

// Times one kernel at num_threads()==1 and at `threads`, restoring the
// configured parallelism afterwards.
template <typename Fn>
KernelBaseline baseline(const std::string& name, std::size_t threads,
                        int reps, Fn&& fn) {
  KernelBaseline b;
  b.name = name;
  fn();  // warm-up (spectra caches, allocator)
  base::set_num_threads(1);
  b.serial_ms = time_ms(reps, fn);
  base::set_num_threads(threads);
  b.threaded_ms = time_ms(reps, fn);
  return b;
}

// Serial-vs-threaded snapshot of the runtime-wired kernels: the BCM conv
// forward (FFT + eMAC + IFFT per block) and the batched FFT itself.
void write_kernels_json(const std::string& path, std::size_t threads) {
  std::vector<KernelBaseline> rows;

  numeric::Rng rng(6);
  core::BcmConv2d conv(conv_spec(32), 16,
                       core::BcmParameterization::kHadamard, rng);
  tensor::Tensor x({2, 32, 14, 14});
  tensor::fill_gaussian(x, rng);
  rows.push_back(baseline("bcm_conv_forward", threads, 20, [&] {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }));

  const std::size_t bs = 16, count = 4096;
  const numeric::TwiddleRom& rom = numeric::twiddle_rom(bs);
  std::vector<numeric::cfloat> batch(bs * count);
  for (auto& v : batch) v = {rng.gaussian(), rng.gaussian()};
  rows.push_back(baseline("fft_batch", threads, 50, [&] {
    auto copy = batch;
    numeric::fft_batch_inplace(std::span<numeric::cfloat>(copy), rom, false);
    benchmark::DoNotOptimize(copy.data());
  }));

  std::vector<float> rbatch(bs * count);
  for (auto& v : rbatch) v = rng.gaussian();
  const std::size_t hb = numeric::half_bins(bs);
  std::vector<float> bre(count * hb), bim(count * hb);
  rows.push_back(baseline("rfft_batch", threads, 50, [&] {
    numeric::rfft_batch_soa(rbatch, bs, bre, bim);
    benchmark::DoNotOptimize(bre.data());
  }));

  // Before/after the half-spectrum rewrite, both sides single-threaded:
  // the retired full-spectrum kernels vs what the layers run today.
  std::vector<HalfSpectrumRow> half_rows;
  base::set_num_threads(1);
  {
    HalfSpectrumRow r;
    r.name = "bcm_conv_forward";
    auto warm_full = full_spectrum_conv_forward(conv, x);
    auto warm_half = conv.forward(x, false);
    benchmark::DoNotOptimize(warm_full.data());
    benchmark::DoNotOptimize(warm_half.data());
    r.full_ms = best_ms(20, [&] {
      auto y = full_spectrum_conv_forward(conv, x);
      benchmark::DoNotOptimize(y.data());
    });
    r.half_ms = best_ms(20, [&] {
      auto y = conv.forward(x, false);
      benchmark::DoNotOptimize(y.data());
    });
    half_rows.push_back(r);
  }
  {
    HalfSpectrumRow r;
    r.name = "circulant_matvec_fft";
    const std::size_t n = 512;
    const auto c = core::Circulant::from_first_column(random_vec(n, 1));
    const auto v = random_vec(n, 2);
    r.full_ms = best_ms(200, [&] {
      auto y = full_spectrum_matvec(c, v);
      benchmark::DoNotOptimize(y.data());
    });
    r.half_ms = best_ms(200, [&] {
      auto y = c.matvec_fft(v);
      benchmark::DoNotOptimize(y.data());
    });
    half_rows.push_back(r);
  }
  // SIMD-vectorized eMAC + compacted pruned-block schedules, all serial.
  //
  // Row 1: the raw dispatched kernel vs the scalar reference over the
  // layers' real call shape (hb-bin rows, one call per surviving block).
  // The 1.5x floor is declared only when the dispatcher actually picked
  // AVX2 — on scalar-only hosts both sides run the same kernel.
  //
  // Rows 2-3: dense vs pruned infer_emac_irfft at α=0.5 / α=0.84 — the
  // compacted schedule must turn the skip index into wall-clock the way
  // the accelerator's skip datapath turns it into cycles. The α=0.84 row
  // carries the paper-motivated 2x floor unconditionally: schedule
  // compaction does not depend on SIMD.
  std::vector<EmacSimdRow> emac_rows;
  // Kernel rows at three block sizes. BS=16 (9-bin rows — one 8-wide
  // vector plus a scalar tail) is the layers' common shape but leaves the
  // AVX2 path little headroom over the compiler's SSE auto-vectorization
  // of the scalar kernel, so it and BS=64 ship without floors; BS=128
  // (65 bins) is compute-rich enough that the 8-wide path must deliver
  // >= 1.5x on any host whose dispatcher picked AVX2. Working sets are
  // L1-resident so the comparison is compute-bound — the layers' schedule
  // walks spectra that were just FFT'd, so hot rows are the realistic case.
  const auto kernel_row = [&](const std::string& name, std::size_t bs,
                              double floor_if_avx2) {
    EmacSimdRow r;
    r.name = name;
    const std::size_t hb = numeric::half_bins(bs);
    const std::size_t pairs = 4096 / hb;
    numeric::Rng erng(9 + bs);
    numeric::AlignedVec<float> wr(pairs * hb), wi(pairs * hb);
    numeric::AlignedVec<float> xr(pairs * hb), xi(pairs * hb);
    for (std::size_t i = 0; i < wr.size(); ++i) {
      wr[i] = erng.gaussian();
      wi[i] = erng.gaussian();
      xr[i] = erng.gaussian();
      xi[i] = erng.gaussian();
    }
    numeric::AlignedVec<float> ar(hb), ai(hb);
    const auto run = [&](numeric::emac::MulAccFn fn) {
      std::fill(ar.begin(), ar.end(), 0.0F);
      std::fill(ai.begin(), ai.end(), 0.0F);
      for (std::size_t p = 0; p < pairs; ++p)
        fn(ar.data(), ai.data(), wr.data() + p * hb, wi.data() + p * hb,
           xr.data() + p * hb, xi.data() + p * hb, hb);
      benchmark::DoNotOptimize(ar.data());
      benchmark::DoNotOptimize(ai.data());
    };
    run(numeric::emac::mul_acc_fn());  // warm-up resolves the dispatch
    r.baseline_ms = best_ms(2000, [&] { run(numeric::emac::mul_acc_scalar); });
    r.optimized_ms = best_ms(2000, [&] { run(numeric::emac::mul_acc_fn()); });
    if (numeric::emac::active_path() == numeric::emac::Path::kAvx2)
      r.min_speedup = floor_if_avx2;
    return r;
  };
  emac_rows.push_back(kernel_row("emac_mul_acc_kernel_bs16", 16, 0.0));
  emac_rows.push_back(kernel_row("emac_mul_acc_kernel_bs64", 64, 0.0));
  emac_rows.push_back(kernel_row("emac_mul_acc_kernel_bs128", 128, 1.5));
  {
    // 256 channels / BS=16: 16x16 block grid, so the eMAC stage dominates
    // the per-pixel IFFTs the way it does in the paper's VGG-scale layers
    // and the schedule win is visible in wall-clock.
    numeric::Rng prng(10);
    core::BcmConv2d pconv(conv_spec(256), 16,
                          core::BcmParameterization::kHadamard, prng);
    tensor::Tensor px({1, 256, 7, 7});
    tensor::fill_gaussian(px, prng);
    pconv.prepare_inference();
    core::ActivationSpectra spec;
    pconv.infer_rfft(px, spec);
    const auto dense_ms = best_ms(20, [&] {
      auto y = pconv.infer_emac_irfft(spec);
      benchmark::DoNotOptimize(y.data());
    });
    const auto pruned_ms = [&](std::size_t keep_mod, std::size_t keep_lim) {
      std::vector<std::uint8_t> skip(pconv.layout().total_blocks());
      for (std::size_t b = 0; b < skip.size(); ++b)
        skip[b] = (b % keep_mod) < keep_lim ? 1 : 0;
      pconv.set_skip_index(std::move(skip));
      pconv.prepare_inference();
      return best_ms(20, [&] {
        auto y = pconv.infer_emac_irfft(spec);
        benchmark::DoNotOptimize(y.data());
      });
    };
    EmacSimdRow r50;
    r50.name = "emac_irfft_pruned_alpha50";
    r50.baseline_ms = dense_ms;
    r50.optimized_ms = pruned_ms(2, 1);  // keep every other block
    emac_rows.push_back(r50);
    EmacSimdRow r84;
    r84.name = "emac_irfft_pruned_alpha84";
    r84.baseline_ms = dense_ms;
    r84.optimized_ms = pruned_ms(25, 4);  // keep 4/25 = 16% of blocks
    r84.min_speedup = 2.0;
    emac_rows.push_back(r84);
    pconv.reset_pruning();
  }
  base::set_num_threads(threads);

  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"name\": ";
    obs::write_json_string(os, r.name);
    os << ", \"serial_ms\": ";
    obs::write_json_number(os, r.serial_ms);
    os << ", \"threaded_ms\": ";
    obs::write_json_number(os, r.threaded_ms);
    os << ", \"speedup\": ";
    obs::write_json_number(os, r.threaded_ms > 0.0
                                   ? r.serial_ms / r.threaded_ms
                                   : 0.0);
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"half_spectrum\": [\n";
  for (std::size_t i = 0; i < half_rows.size(); ++i) {
    const auto& r = half_rows[i];
    os << "    {\"name\": ";
    obs::write_json_string(os, r.name);
    os << ", \"full_spectrum_ms\": ";
    obs::write_json_number(os, r.full_ms);
    os << ", \"half_spectrum_ms\": ";
    obs::write_json_number(os, r.half_ms);
    os << ", \"speedup\": ";
    obs::write_json_number(os, r.half_ms > 0.0 ? r.full_ms / r.half_ms : 0.0);
    os << "}" << (i + 1 < half_rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"emac_simd\": [\n";
  for (std::size_t i = 0; i < emac_rows.size(); ++i) {
    const auto& r = emac_rows[i];
    os << "    {\"name\": ";
    obs::write_json_string(os, r.name);
    os << ", \"baseline_ms\": ";
    obs::write_json_number(os, r.baseline_ms);
    os << ", \"optimized_ms\": ";
    obs::write_json_number(os, r.optimized_ms);
    os << ", \"speedup\": ";
    obs::write_json_number(
        os, r.optimized_ms > 0.0 ? r.baseline_ms / r.optimized_ms : 0.0);
    if (r.min_speedup > 0.0) {
      os << ", \"min_speedup\": ";
      obs::write_json_number(os, r.min_speedup);
    }
    os << "}" << (i + 1 < emac_rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// Strips --threads=N and --kernels-json[=PATH] from argv (before
// google-benchmark parses it). Returns false on a malformed value.
bool parse_parallel_flags(int& argc, char** argv, std::size_t& threads,
                          bool& want_json, std::string& json_path) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(arg.c_str() + 10, &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) return false;
      threads = static_cast<std::size_t>(v);
    } else if (arg == "--kernels-json") {
      want_json = true;
    } else if (arg.rfind("--kernels-json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(std::strlen("--kernels-json="));
      if (json_path.empty()) return false;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::CliOptions obs_opts = obs::parse_cli(argc, argv);  // strips obs flags
  std::size_t threads = 0;  // 0: leave the RPBCM_THREADS / hardware default
  bool want_json = false;
  std::string json_path = "BENCH_kernels.json";
  if (!parse_parallel_flags(argc, argv, threads, want_json, json_path)) {
    RPBCM_LOG_ERROR("bench", "usage: --threads=N (N>=1), "
                             "--kernels-json[=PATH]");
    return 1;
  }
  if (threads != 0) base::set_num_threads(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    RPBCM_OBS_TRACE_SCOPE("bench", "micro_kernels");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  if (want_json) {
    write_kernels_json(json_path,
                       threads != 0 ? threads : base::num_threads());
  }
  obs::dump_outputs(obs_opts);
  return 0;
}

// Micro-benchmarks (google-benchmark) of the computational kernels behind
// the paper's complexity claims: O(n^2) direct circulant matvec vs
// O(n log n) FFT path, the FFT itself, the fixed-point PE datapath, and
// dense vs BCM-compressed convolution forward passes.

// Observability:  --trace-out= / --metrics-out= are stripped before
// google-benchmark sees argv; kernel timings recorded by the harness are
// exported through the shared obs registry.
//
// Parallel runtime: --threads=N sets base::set_num_threads before any
// benchmark runs; --kernels-json[=PATH] additionally writes a
// serial-vs-threaded baseline (default PATH: BENCH_kernels.json) so the
// runtime's speedup can be tracked across commits.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "base/parallel.hpp"
#include "core/bcm_conv.hpp"
#include "core/circulant.hpp"
#include "hw/emac_pe.hpp"
#include "hw/fft_pe.hpp"
#include "nn/conv2d.hpp"
#include "numeric/fft.hpp"
#include "numeric/random.hpp"
#include "obs/cli.hpp"
#include "obs/json.hpp"
#include "obs/macros.hpp"
#include "tensor/init.hpp"

using namespace rpbcm;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  numeric::Rng rng(seed);
  return rng.gaussian_vector(n);
}

void BM_FftComplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const numeric::TwiddleRom rom(n);
  std::vector<numeric::cfloat> data(n);
  numeric::Rng rng(n);
  for (auto& v : data) v = {rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    auto copy = data;
    numeric::fft_inplace(std::span<numeric::cfloat>(copy), rom, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftComplex)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(256);

void BM_CirculantMatvecDirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = core::Circulant::from_first_column(random_vec(n, 1));
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    auto y = c.matvec_direct(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CirculantMatvecDirect)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CirculantMatvecFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = core::Circulant::from_first_column(random_vec(n, 1));
  const auto x = random_vec(n, 2);
  for (auto _ : state) {
    auto y = c.matvec_fft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CirculantMatvecFft)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_FixedPointFftPe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const hw::FftPe pe(n);
  std::vector<hw::Fix16> x(n);
  numeric::Rng rng(3);
  for (auto& v : x) v = hw::Fix16::from_float(rng.uniform(-1, 1));
  for (auto _ : state) {
    auto spec = pe.forward_real(x);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FixedPointFftPe)->Arg(8)->Arg(16)->Arg(32);

void BM_EmacHalf(benchmark::State& state) {
  const auto bs = static_cast<std::size_t>(state.range(0));
  const std::size_t half = bs / 2 + 1;
  std::vector<hw::CFix16> w(half), x(half), acc(half);
  numeric::Rng rng(4);
  for (std::size_t k = 0; k < half; ++k) {
    w[k] = hw::CFix16::from_floats(rng.uniform(-1, 1), rng.uniform(-1, 1));
    x[k] = hw::CFix16::from_floats(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  for (auto _ : state) {
    hw::EmacPe::emac_half(w, x, acc);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_EmacHalf)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

nn::ConvSpec conv_spec(std::size_t c) {
  nn::ConvSpec s;
  s.in_channels = c;
  s.out_channels = c;
  s.kernel = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

void BM_DenseConvForward(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(5);
  nn::Conv2d conv(conv_spec(c), rng);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DenseConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_BcmConvForward(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(6);
  core::BcmConv2d conv(conv_spec(c), 8,
                       core::BcmParameterization::kHadamard, rng);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BcmConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_BcmConvForwardPruned(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  numeric::Rng rng(7);
  core::BcmConv2d conv(conv_spec(c), 8,
                       core::BcmParameterization::kHadamard, rng);
  // Prune half the blocks: the software skip path mirrors the PE's.
  for (std::size_t b = 0; b < conv.layout().total_blocks(); b += 2)
    conv.prune_block(b);
  tensor::Tensor x({1, c, 14, 14});
  tensor::fill_gaussian(x, rng);
  for (auto _ : state) {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BcmConvForwardPruned)->Arg(16)->Arg(32)->Arg(64);

// Wall-clock of `reps` invocations of fn(), in milliseconds.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct KernelBaseline {
  std::string name;
  double serial_ms = 0.0;
  double threaded_ms = 0.0;
};

// Times one kernel at num_threads()==1 and at `threads`, restoring the
// configured parallelism afterwards.
template <typename Fn>
KernelBaseline baseline(const std::string& name, std::size_t threads,
                        int reps, Fn&& fn) {
  KernelBaseline b;
  b.name = name;
  fn();  // warm-up (spectra caches, allocator)
  base::set_num_threads(1);
  b.serial_ms = time_ms(reps, fn);
  base::set_num_threads(threads);
  b.threaded_ms = time_ms(reps, fn);
  return b;
}

// Serial-vs-threaded snapshot of the runtime-wired kernels: the BCM conv
// forward (FFT + eMAC + IFFT per block) and the batched FFT itself.
void write_kernels_json(const std::string& path, std::size_t threads) {
  std::vector<KernelBaseline> rows;

  numeric::Rng rng(6);
  core::BcmConv2d conv(conv_spec(32), 8,
                       core::BcmParameterization::kHadamard, rng);
  tensor::Tensor x({2, 32, 14, 14});
  tensor::fill_gaussian(x, rng);
  rows.push_back(baseline("bcm_conv_forward", threads, 20, [&] {
    auto y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }));

  const std::size_t bs = 16, count = 4096;
  const numeric::TwiddleRom rom(bs);
  std::vector<numeric::cfloat> batch(bs * count);
  for (auto& v : batch) v = {rng.gaussian(), rng.gaussian()};
  rows.push_back(baseline("fft_batch", threads, 50, [&] {
    auto copy = batch;
    numeric::fft_batch_inplace(std::span<numeric::cfloat>(copy), rom, false);
    benchmark::DoNotOptimize(copy.data());
  }));

  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"name\": ";
    obs::write_json_string(os, r.name);
    os << ", \"serial_ms\": ";
    obs::write_json_number(os, r.serial_ms);
    os << ", \"threaded_ms\": ";
    obs::write_json_number(os, r.threaded_ms);
    os << ", \"speedup\": ";
    obs::write_json_number(os, r.threaded_ms > 0.0
                                   ? r.serial_ms / r.threaded_ms
                                   : 0.0);
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// Strips --threads=N and --kernels-json[=PATH] from argv (before
// google-benchmark parses it). Returns false on a malformed value.
bool parse_parallel_flags(int& argc, char** argv, std::size_t& threads,
                          bool& want_json, std::string& json_path) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(arg.c_str() + 10, &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) return false;
      threads = static_cast<std::size_t>(v);
    } else if (arg == "--kernels-json") {
      want_json = true;
    } else if (arg.rfind("--kernels-json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(std::strlen("--kernels-json="));
      if (json_path.empty()) return false;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::CliOptions obs_opts = obs::parse_cli(argc, argv);  // strips obs flags
  std::size_t threads = 0;  // 0: leave the RPBCM_THREADS / hardware default
  bool want_json = false;
  std::string json_path = "BENCH_kernels.json";
  if (!parse_parallel_flags(argc, argv, threads, want_json, json_path)) {
    std::fprintf(stderr,
                 "usage: --threads=N (N>=1), --kernels-json[=PATH]\n");
    return 1;
  }
  if (threads != 0) base::set_num_threads(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    RPBCM_OBS_TRACE_SCOPE("bench", "micro_kernels");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  if (want_json) {
    write_kernels_json(json_path,
                       threads != 0 ? threads : base::num_threads());
  }
  obs::dump_outputs(obs_opts);
  return 0;
}
